//! Scoped-thread scatter/gather shared by the scenario-parallel paths
//! (bit-width DSE, multi-pipeline runs, multi-IP compilation, line-rate
//! sweeps).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Runs `f` over every item on a bounded scoped-thread pool (at most
/// `available_parallelism` workers, so a long item list cannot
/// oversubscribe the host) and gathers the results in input order. A
/// panic in any `f` propagates when the scope closes.
pub(crate) fn scoped_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = std::thread::available_parallelism().map_or(1, |c| c.get());
    scoped_map_with(items, workers, f)
}

/// [`scoped_map`] with an explicit pool size: exactly
/// `workers.clamp(1, items.len())` threads share the work queue. The
/// pool size is execution-only — results are gathered in input order
/// whatever the interleaving, so any worker count returns the identical
/// vector.
pub(crate) fn scoped_map_with<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&items[i]);
                // lint:allow(panic-in-lib): rx is dropped only after the scope joins every worker
                tx.send((i, r)).expect("gather receiver outlives the scope");
            });
        }
    });
    drop(tx);
    let mut results: Vec<Option<R>> = Vec::new();
    results.resize_with(n, || None);
    for (i, r) in rx {
        results[i] = Some(r);
    }
    results
        .into_iter()
        // lint:allow(panic-in-lib): the channel delivers each index exactly once before rx closes
        .map(|r| r.expect("every item was processed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_input_order() {
        let items: Vec<usize> = (0..32).collect();
        let out = scoped_map(&items, |&i| i * 2);
        assert_eq!(out, (0..32).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_is_empty_output() {
        let out: Vec<u32> = scoped_map(&[] as &[u32], |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn explicit_worker_counts_agree_with_default() {
        // The pool size is an execution knob, never a semantic one:
        // every worker count (including a degenerate 0, clamped to 1,
        // and a pool far wider than the item list) gathers the same
        // in-order result vector.
        let items: Vec<usize> = (0..64).collect();
        let expect: Vec<usize> = items.iter().map(|&i| i * i).collect();
        for workers in [0usize, 1, 2, 3, 64, 1000] {
            let out = scoped_map_with(&items, workers, |&i| i * i);
            assert_eq!(out, expect, "workers = {workers}");
        }
        assert_eq!(scoped_map(&items, |&i| i * i), expect);
    }

    #[test]
    fn item_count_beyond_core_count_completes() {
        // More items than any plausible worker pool: the bounded pool
        // must still process every item exactly once, in order.
        let items: Vec<usize> = (0..500).collect();
        let out = scoped_map(&items, |&i| i + 1);
        assert_eq!(out, (1..=500).collect::<Vec<_>>());
    }
}
