//! Design-space exploration over quantisation bit-widths.
//!
//! The paper: "Design space exploration is performed to arrive at the
//! quantisation level to reduce the resource consumption and
//! computational complexity without compromising on the detection
//! accuracy. From our experiments, we observed that 4-bit uniform
//! quantisation achieved best performance in both DoS and Fuzzying
//! attacks." This module regenerates that sweep.

use canids_dataflow::ip::AcceleratorIp;
use canids_dataflow::resources::Device;
use canids_dataset::features::IdBitsPayloadBits;
use canids_dataset::generator::Dataset;
use canids_dataset::split::train_test_split;
use canids_qnn::metrics::ConfusionMatrix;
use canids_qnn::mlp::QuantMlp;
use canids_qnn::quant::BitWidth;
use canids_qnn::trainer::Trainer;

use crate::error::CoreError;
use crate::pipeline::PipelineConfig;

/// One sweep point: a bit-width with its quality and cost.
#[derive(Debug, Clone)]
pub struct DsePoint {
    /// Uniform weight/activation width.
    pub bits: u8,
    /// Test-set confusion matrix of the integer model.
    pub cm: ConfusionMatrix,
    /// LUTs of the compiled IP.
    pub luts: u64,
    /// BRAMs of the compiled IP.
    pub bram36: u64,
    /// ZCU104 utilisation (max fraction over resource classes).
    pub utilization: f64,
    /// Compute latency of the IP in seconds.
    pub latency_s: f64,
}

impl DsePoint {
    /// The accuracy/cost figure of merit used for selection: F1 minus a
    /// small resource penalty (ties on accuracy resolve to the cheaper
    /// design).
    pub fn merit(&self) -> f64 {
        self.cm.f1() - 0.05 * self.utilization
    }
}

/// The sweep outcome.
#[derive(Debug, Clone)]
pub struct DseReport {
    /// All evaluated points, ascending bit-width.
    pub points: Vec<DsePoint>,
    /// Index of the selected point.
    pub selected: usize,
}

impl DseReport {
    /// The selected sweep point.
    pub fn selected_point(&self) -> &DsePoint {
        &self.points[self.selected]
    }
}

/// Sweeps uniform quantisation widths on one capture.
///
/// Training runs are independent, so they execute on a scoped-thread
/// pool across available cores.
///
/// # Errors
///
/// Propagates the first stage error encountered.
pub fn sweep_bitwidths(
    config: &PipelineConfig,
    capture: &Dataset,
    widths: &[u8],
) -> Result<DseReport, CoreError> {
    let (train_set, test_set) = train_test_split(capture, config.split);
    let encoder = IdBitsPayloadBits;
    let (xs, ys) = train_set.to_xy(&encoder);
    let (txs, tys) = test_set.to_xy(&encoder);

    let results = crate::par::scoped_map(widths, |&bits| -> Result<DsePoint, CoreError> {
        let width = BitWidth::new(bits)?;
        let mlp_config = config.mlp.clone().with_bits(width);
        let mut mlp = QuantMlp::new(mlp_config)?;
        Trainer::new(config.train.clone()).fit(&mut mlp, &xs, &ys)?;
        let int_mlp = mlp.export()?;
        let mut cm = ConfusionMatrix::new();
        for (x, &y) in txs.iter().zip(&tys) {
            cm.record(int_mlp.infer_bits(x).class != 0, y != 0);
        }
        let ip = AcceleratorIp::compile(&int_mlp, config.compile.clone())?;
        let util = ip.utilization(Device::ZCU104).max_fraction();
        Ok(DsePoint {
            bits,
            cm,
            luts: ip.resources().lut,
            bram36: ip.resources().bram36,
            utilization: util,
            latency_s: ip.latency_secs(),
        })
    });

    let mut points = Vec::with_capacity(widths.len());
    for r in results {
        points.push(r?);
    }
    let selected = points
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| a.merit().total_cmp(&b.merit()))
        .map(|(i, _)| i)
        .unwrap_or(0);
    Ok(DseReport { points, selected })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::IdsPipeline;

    #[test]
    fn sweep_orders_resources_by_width() {
        let config = PipelineConfig::dos().quick();
        let capture = IdsPipeline::new(config.clone()).generate_capture();
        let report = sweep_bitwidths(&config, &capture, &[2, 4, 8]).unwrap();
        assert_eq!(report.points.len(), 3);
        // Wider weights never shrink the design.
        assert!(report.points[0].luts <= report.points[2].luts);
        // All sweep points of a separable DoS capture stay accurate.
        for p in &report.points {
            assert!(
                p.cm.accuracy() > 0.95,
                "{}-bit acc {}",
                p.bits,
                p.cm.accuracy()
            );
        }
    }

    #[test]
    fn selection_prefers_accuracy_then_cost() {
        let config = PipelineConfig::dos().quick();
        let capture = IdsPipeline::new(config.clone()).generate_capture();
        let report = sweep_bitwidths(&config, &capture, &[4, 8]).unwrap();
        let sel = report.selected_point();
        for p in &report.points {
            assert!(sel.merit() >= p.merit() - 1e-12);
        }
    }
}
