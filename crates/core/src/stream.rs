//! Streaming (frame-at-a-time) evaluation and the line-rate harness.
//!
//! Every other evaluation path in this crate materialises a capture
//! before classifying it. A deployed IDS cannot: frames arrive one at a
//! time, paced by the wire, and the detector must keep up with a
//! saturated bus. This module provides that serving mode:
//!
//! * [`StreamingEvaluator`] — incremental featurisation + per-frame
//!   integer MLP inference + online [`ConfusionMatrix`] accounting, with
//!   all per-frame buffers reused (no per-frame feature allocation).
//!   Streaming and batch evaluation produce *identical* predictions and
//!   confusion matrices on the same capture — the equivalence tests pin
//!   this.
//! * [`LineRateScenario`] — canned wire-pacing scenarios (classic
//!   1 Mb/s, FD-class) that map onto the unified serving harness
//!   ([`crate::serve::ServeHarness`] with
//!   [`crate::serve::SoftwareBackend`] / [`crate::serve::EcuBackend`])
//!   via [`LineRateScenario::replay_config`].

use canids_can::time::SimTime;
use canids_can::timing::Bitrate;
use canids_dataset::attacks::AttackProfile;
use canids_dataset::features::{FrameEncoder, IdBitsPayloadBits};
use canids_dataset::generator::{Dataset, DatasetBuilder, TrafficConfig};
use canids_dataset::record::LabeledFrame;
use canids_qnn::export::{IntScratch, IntegerMlp};
use canids_qnn::metrics::ConfusionMatrix;
use canids_soc::ecu::EcuConfig;

use crate::serve::ReplayConfig;
use crate::telemetry::{Probe, Stage, WallClock};

/// Accumulated wall-clock nanoseconds per hot-path stage, filled by
/// [`StreamingEvaluator::push_staged`] — the profiled variant of the
/// fused featurise→pack→infer dispatch. A serving session accumulates
/// one of these per dispatch and lays the stages out as consecutive
/// telemetry spans from the service start.
///
/// ```
/// let mut stages = canids_core::stream::StagedNanos::default();
/// stages.featurise += 120;
/// stages.infer += 480;
/// assert_eq!(stages.total(), 600);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StagedNanos {
    /// Wall nanoseconds spent encoding the frame into float features.
    pub featurise: u64,
    /// Wall nanoseconds spent quantising/packing features to levels.
    pub pack: u64,
    /// Wall nanoseconds spent in the integer MLP forward pass.
    pub infer: u64,
}

impl StagedNanos {
    /// Total nanoseconds across the three stages.
    pub fn total(&self) -> u64 {
        self.featurise + self.pack + self.infer
    }

    /// Records the three stages on `probe` as consecutive spans laid
    /// out from `start` on the virtual clock (featurise, then pack,
    /// then infer).
    pub fn record_from(&self, probe: &Probe, shard: u32, start: SimTime) {
        let f_end = start + SimTime::from_nanos(self.featurise);
        let p_end = f_end + SimTime::from_nanos(self.pack);
        let i_end = p_end + SimTime::from_nanos(self.infer);
        probe.record(shard, Stage::Featurise, start, f_end);
        probe.record(shard, Stage::Pack, f_end, p_end);
        probe.record(shard, Stage::Infer, p_end, i_end);
    }
}

/// One streaming verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamVerdict {
    /// Predicted class (0 = normal).
    pub class: usize,
    /// `true` when the frame was classified as an attack.
    pub flagged: bool,
    /// Ground truth of the pushed record.
    pub truth_attack: bool,
}

impl StreamVerdict {
    /// `true` when prediction and ground truth agree.
    pub fn correct(&self) -> bool {
        self.flagged == self.truth_attack
    }
}

/// Frame-at-a-time evaluator over a streamlined integer model.
///
/// # Example
///
/// ```no_run
/// use canids_core::prelude::*;
/// use canids_core::stream::StreamingEvaluator;
///
/// let report = IdsPipeline::new(PipelineConfig::dos().quick()).run()?;
/// let mut eval = StreamingEvaluator::new(report.detector.int_mlp.clone());
/// for rec in report.detector.test_set.iter() {
///     eval.push(rec);
/// }
/// // Identical to the batch test-set confusion matrix.
/// assert_eq!(*eval.confusion(), report.detector.test_cm);
/// # Ok::<(), canids_core::CoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct StreamingEvaluator<E: FrameEncoder = IdBitsPayloadBits> {
    model: IntegerMlp,
    encoder: E,
    fbuf: Vec<f32>,
    xbuf: Vec<u32>,
    scratch: IntScratch,
    cm: ConfusionMatrix,
    frames: u64,
}

impl StreamingEvaluator<IdBitsPayloadBits> {
    /// An evaluator using the paper's 75-bit frame encoding.
    pub fn new(model: IntegerMlp) -> Self {
        StreamingEvaluator::with_encoder(model, IdBitsPayloadBits)
    }
}

impl<E: FrameEncoder> StreamingEvaluator<E> {
    /// An evaluator with a custom frame encoder.
    pub fn with_encoder(model: IntegerMlp, encoder: E) -> Self {
        let dim = encoder.dim();
        StreamingEvaluator {
            model,
            encoder,
            fbuf: vec![0.0; dim],
            xbuf: vec![0; dim],
            scratch: IntScratch::new(),
            cm: ConfusionMatrix::new(),
            frames: 0,
        }
    }

    /// Classifies one record, updating the online confusion matrix.
    ///
    /// The fused per-frame path: featurise, quantise and infer through
    /// the evaluator's reusable buffers (including the model's
    /// [`IntScratch`]) with **zero intermediate allocation**. The
    /// quantisation of float features to integer levels matches
    /// [`IntegerMlp::infer_bits`] exactly, so streaming and batch
    /// predictions are identical.
    pub fn push(&mut self, rec: &LabeledFrame) -> StreamVerdict {
        self.encoder.encode_into(&rec.frame, &mut self.fbuf);
        for (x, &f) in self.xbuf.iter_mut().zip(&self.fbuf) {
            *x = (f.round().max(0.0) as u32).min(self.model.input_levels);
        }
        let class = self.model.infer_class(&self.xbuf, &mut self.scratch);
        let flagged = class != 0;
        let truth_attack = rec.label.is_attack();
        self.cm.record(flagged, truth_attack);
        self.frames += 1;
        StreamVerdict {
            class,
            flagged,
            truth_attack,
        }
    }

    /// Classifies a window of records in one call, appending one verdict
    /// per record to `out` — the batched multi-frame entry point the
    /// software serving backend drives, so per-window dispatch (call
    /// overhead, branch warm-up) amortises across the window instead of
    /// repeating per frame. Identical predictions and accounting to
    /// calling [`push`](Self::push) per record.
    pub fn push_batch(&mut self, recs: &[LabeledFrame], out: &mut Vec<StreamVerdict>) {
        out.reserve(recs.len());
        for rec in recs {
            out.push(self.push(rec));
        }
    }

    /// [`push`](Self::push) with per-stage wall profiling: identical
    /// classification and accounting, but each of the three fused
    /// stages (featurise, quantise/pack, infer) is bracketed by the
    /// audited [`WallClock`] shim and its nanoseconds accumulate into
    /// `stages`. Only the telemetry-instrumented serving path calls
    /// this; the unprofiled [`push`](Self::push) stays measurement-free.
    pub fn push_staged(&mut self, rec: &LabeledFrame, stages: &mut StagedNanos) -> StreamVerdict {
        let t0 = WallClock::start();
        self.encoder.encode_into(&rec.frame, &mut self.fbuf);
        stages.featurise += t0.elapsed_nanos();

        let t1 = WallClock::start();
        for (x, &f) in self.xbuf.iter_mut().zip(&self.fbuf) {
            *x = (f.round().max(0.0) as u32).min(self.model.input_levels);
        }
        stages.pack += t1.elapsed_nanos();

        let t2 = WallClock::start();
        let class = self.model.infer_class(&self.xbuf, &mut self.scratch);
        stages.infer += t2.elapsed_nanos();

        let flagged = class != 0;
        let truth_attack = rec.label.is_attack();
        self.cm.record(flagged, truth_attack);
        self.frames += 1;
        StreamVerdict {
            class,
            flagged,
            truth_attack,
        }
    }

    /// [`push_batch`](Self::push_batch) with per-stage wall profiling
    /// (see [`push_staged`](Self::push_staged)); stage nanoseconds for
    /// the whole window accumulate into `stages`.
    pub fn push_batch_staged(
        &mut self,
        recs: &[LabeledFrame],
        out: &mut Vec<StreamVerdict>,
        stages: &mut StagedNanos,
    ) {
        out.reserve(recs.len());
        for rec in recs {
            out.push(self.push_staged(rec, stages));
        }
    }

    /// The online confusion matrix over everything pushed so far.
    pub fn confusion(&self) -> &ConfusionMatrix {
        &self.cm
    }

    /// Frames classified so far.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// The wrapped model.
    pub fn model(&self) -> &IntegerMlp {
        &self.model
    }

    /// Resets the online accounting, keeping the model.
    pub fn reset(&mut self) {
        self.cm = ConfusionMatrix::new();
        self.frames = 0;
    }
}

/// One verdict of an N-detector evaluator: per-model classes plus the
/// fused (any-model) flag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiStreamVerdict {
    /// Predicted class per model, in model order (0 = normal).
    pub classes: Vec<usize>,
    /// `true` when any model classified the frame as an attack.
    pub flagged: bool,
    /// Ground truth of the pushed record.
    pub truth_attack: bool,
}

/// Frame-at-a-time evaluator over **N** integer models with **one shared
/// feature-extraction pass**: each pushed record is encoded and
/// quantised once, and every model consumes the same buffer — the
/// software mirror of the ECU's shared feature packing (N detectors, one
/// featurisation per window instead of N redundant ones).
///
/// Per-model predictions and confusion matrices are *identical* to N
/// independent [`StreamingEvaluator`]s over the same capture; the unit
/// tests pin this.
#[derive(Debug, Clone)]
pub struct MultiStreamingEvaluator<E: FrameEncoder = IdBitsPayloadBits> {
    models: Vec<IntegerMlp>,
    encoder: E,
    fbuf: Vec<f32>,
    xbuf: Vec<u32>,
    scratch: IntScratch,
    cms: Vec<ConfusionMatrix>,
    fused_cm: ConfusionMatrix,
    frames: u64,
}

impl MultiStreamingEvaluator<IdBitsPayloadBits> {
    /// An N-model evaluator using the paper's 75-bit frame encoding.
    pub fn new(models: Vec<IntegerMlp>) -> Self {
        MultiStreamingEvaluator::with_encoder(models, IdBitsPayloadBits)
    }
}

impl<E: FrameEncoder> MultiStreamingEvaluator<E> {
    /// An N-model evaluator with a custom frame encoder. All models must
    /// share the encoder's input dimension.
    pub fn with_encoder(models: Vec<IntegerMlp>, encoder: E) -> Self {
        let dim = encoder.dim();
        let n = models.len();
        MultiStreamingEvaluator {
            models,
            encoder,
            fbuf: vec![0.0; dim],
            xbuf: vec![0; dim],
            scratch: IntScratch::new(),
            cms: vec![ConfusionMatrix::new(); n],
            fused_cm: ConfusionMatrix::new(),
            frames: 0,
        }
    }

    /// Classifies one record through every model off one encoding pass,
    /// updating the per-model and fused confusion matrices.
    pub fn push(&mut self, rec: &LabeledFrame) -> MultiStreamVerdict {
        self.encoder.encode_into(&rec.frame, &mut self.fbuf);
        let truth_attack = rec.label.is_attack();
        let mut classes = Vec::with_capacity(self.models.len());
        let mut flagged = false;
        // Same quantisation as the single-model evaluator, clamped to
        // each model's own input levels — performed once and re-clamped
        // only when a model's level count differs from the buffer's
        // (never, in the homogeneous fleets deployed here).
        let mut quantised_for: Option<u32> = None;
        for (model, cm) in self.models.iter().zip(&mut self.cms) {
            if quantised_for != Some(model.input_levels) {
                for (x, &f) in self.xbuf.iter_mut().zip(&self.fbuf) {
                    *x = (f.round().max(0.0) as u32).min(model.input_levels);
                }
                quantised_for = Some(model.input_levels);
            }
            let class = model.infer_class(&self.xbuf, &mut self.scratch);
            cm.record(class != 0, truth_attack);
            flagged |= class != 0;
            classes.push(class);
        }
        self.fused_cm.record(flagged, truth_attack);
        self.frames += 1;
        MultiStreamVerdict {
            classes,
            flagged,
            truth_attack,
        }
    }

    /// Per-model confusion matrices, in model order.
    pub fn confusions(&self) -> &[ConfusionMatrix] {
        &self.cms
    }

    /// The fused (any-model-flags) confusion matrix.
    pub fn fused_confusion(&self) -> &ConfusionMatrix {
        &self.fused_cm
    }

    /// Attached models.
    pub fn models(&self) -> &[IntegerMlp] {
        &self.models
    }

    /// Frames classified so far.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Resets the online accounting, keeping the models.
    pub fn reset(&mut self) {
        for cm in &mut self.cms {
            *cm = ConfusionMatrix::new();
        }
        self.fused_cm = ConfusionMatrix::new();
        self.frames = 0;
    }
}

/// One line-rate replay scenario: which capture to generate and how fast
/// to pace it.
#[derive(Debug, Clone)]
pub struct LineRateScenario {
    /// Scenario name (appears in reports and tables).
    pub name: String,
    /// Attack to inject, if any.
    pub attack: Option<AttackProfile>,
    /// Capture length.
    pub duration: SimTime,
    /// Capture seed.
    pub seed: u64,
    /// Pacing bitrate of the replay (saturated line rate).
    pub bitrate: Bitrate,
    /// Software FIFO depth before drops.
    pub queue_depth: usize,
}

impl LineRateScenario {
    /// A saturated 1 Mb/s classic-CAN scenario.
    pub fn classic_1m(name: &str, attack: Option<AttackProfile>, duration: SimTime) -> Self {
        LineRateScenario {
            name: name.to_owned(),
            attack,
            duration,
            seed: 0x11E,
            bitrate: Bitrate::HIGH_SPEED_1M,
            queue_depth: 64,
        }
    }

    /// A CAN-FD-class scenario: classic frames paced at a 5 Mb/s data
    /// rate — the arbitration-phase format is unchanged, only the
    /// offered frame rate scales.
    pub fn fd_class(name: &str, attack: Option<AttackProfile>, duration: SimTime) -> Self {
        LineRateScenario {
            name: name.to_owned(),
            attack,
            duration,
            seed: 0x5FD,
            bitrate: Bitrate::new(5_000_000),
            queue_depth: 64,
        }
    }

    /// Synthesises this scenario's capture — the single recipe both
    /// parallel [`crate::serve::ServeHarness::sweep`] runs and
    /// sequential replays (e.g. the perf-snapshot driver) use.
    pub fn generate_capture(&self) -> Dataset {
        DatasetBuilder::new(TrafficConfig {
            duration: self.duration,
            attack: self.attack,
            seed: self.seed,
            ..TrafficConfig::default()
        })
        .build()
    }
}

/// A host-contention caveat for scenario-parallel replays: present when
/// the host has fewer cores than scenarios (wall-clock service times
/// then include scheduler time-sharing), absent otherwise.
pub fn contention_note(scenario_count: usize) -> Option<String> {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    (cores < scenario_count).then(|| {
        format!(
            "note: {scenario_count} scenarios time-shared {cores} core(s); tail latencies and \
             drops include host scheduling contention (bench_summary records the uncontended, \
             sequential numbers)"
        )
    })
}

/// The unified replay configuration a [`LineRateScenario`] maps to:
/// saturated pacing at the scenario's bitrate, software FIFO at the
/// scenario's queue depth.
impl LineRateScenario {
    /// This scenario as a [`ReplayConfig`] for the serving harness.
    pub fn replay_config(&self) -> ReplayConfig {
        ReplayConfig {
            bitrate: self.bitrate,
            ecu: EcuConfig {
                queue_depth: self.queue_depth,
                ..EcuConfig::default()
            },
            ..ReplayConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canids_dataset::attacks::BurstSchedule;
    use canids_dataset::features::FrameEncoder;
    use canids_qnn::mlp::{MlpConfig, QuantMlp};
    use canids_soc::ecu::SchedPolicy;

    use crate::serve::{CaptureSource, EcuBackend, ServeHarness, ServeScenario, SoftwareBackend};

    fn untrained_model() -> IntegerMlp {
        QuantMlp::new(MlpConfig::paper_4bit())
            .unwrap()
            .export()
            .unwrap()
    }

    fn quick_capture(attack: bool, seed: u64) -> Dataset {
        DatasetBuilder::new(TrafficConfig {
            duration: SimTime::from_millis(200),
            attack: attack.then(|| AttackProfile::dos().with_schedule(BurstSchedule::Continuous)),
            seed,
            ..TrafficConfig::default()
        })
        .build()
    }

    #[test]
    fn streaming_matches_batch_exactly() {
        let model = untrained_model();
        let capture = quick_capture(true, 3);
        // Batch path: materialise features, then classify.
        let enc = IdBitsPayloadBits;
        let (xs, ys) = capture.to_xy(&enc);
        let mut batch_cm = ConfusionMatrix::new();
        let mut batch_preds = Vec::with_capacity(xs.len());
        for (x, &y) in xs.iter().zip(&ys) {
            let pred = model.infer_bits(x).class;
            batch_preds.push(pred);
            batch_cm.record(pred != 0, y != 0);
        }
        // Streaming path: one record at a time.
        let mut eval = StreamingEvaluator::new(model.clone());
        let stream_preds: Vec<usize> = capture.iter().map(|rec| eval.push(rec).class).collect();
        assert_eq!(stream_preds, batch_preds, "identical predictions");
        assert_eq!(*eval.confusion(), batch_cm, "identical confusion matrix");
        assert_eq!(eval.frames(), capture.len() as u64);
    }

    #[test]
    fn verdicts_carry_truth_and_correctness() {
        let model = untrained_model();
        let capture = quick_capture(true, 4);
        let mut eval = StreamingEvaluator::new(model);
        for rec in capture.iter().take(50) {
            let v = eval.push(rec);
            assert_eq!(v.truth_attack, rec.label.is_attack());
            assert_eq!(v.correct(), v.flagged == rec.label.is_attack());
            assert_eq!(v.flagged, v.class != 0);
        }
    }

    #[test]
    fn reset_clears_accounting_but_keeps_model() {
        let model = untrained_model();
        let capture = quick_capture(false, 5);
        let mut eval = StreamingEvaluator::new(model);
        for rec in capture.iter().take(10) {
            eval.push(rec);
        }
        assert_eq!(eval.frames(), 10);
        eval.reset();
        assert_eq!(eval.frames(), 0);
        assert_eq!(eval.confusion().total(), 0);
        assert_eq!(eval.model().layer_dims()[0], (75, 64));
    }

    #[test]
    fn line_rate_replay_accounts_every_frame() {
        let model = untrained_model();
        let capture = quick_capture(true, 6);
        let scenario = LineRateScenario::classic_1m("dos-1m", None, SimTime::from_millis(200));
        let report = ServeHarness::new(SoftwareBackend::single(model))
            .replay(&capture, &scenario.replay_config())
            .unwrap();
        assert_eq!(report.offered, capture.len());
        assert_eq!(report.serviced + report.dropped as usize, report.offered);
        assert_eq!(report.cm.total() as usize, report.serviced);
        assert!(report.offered_fps > 1_000.0, "saturated 1 Mb/s pacing");
        assert!(report.latency.p50 <= report.latency.p99);
        assert!(report.latency.p99 <= report.latency.max);
        assert!(report.latency.max > SimTime::ZERO);
        // Release builds comfortably sustain classic-CAN line rate; debug
        // builds are not a performance statement, so only gate there.
        if !cfg!(debug_assertions) {
            assert!(
                report.keeps_up() && report.sustained_fps.unwrap_or(0.0) >= report.offered_fps,
                "sustained {:.0} fps vs offered {:.0} fps, dropped {}",
                report.sustained_fps.unwrap_or(0.0),
                report.offered_fps,
                report.dropped
            );
        }
    }

    #[test]
    fn sweep_runs_scenarios_in_parallel_and_in_order() {
        let model = untrained_model();
        let scenarios = [
            LineRateScenario::classic_1m("normal-1m", None, SimTime::from_millis(120)),
            LineRateScenario::fd_class(
                "dos-fd",
                Some(AttackProfile::dos().with_schedule(BurstSchedule::Continuous)),
                SimTime::from_millis(120),
            ),
        ];
        let serve_scenarios: Vec<ServeScenario<'_>> = scenarios
            .iter()
            .map(|s| ServeScenario {
                name: s.name.clone(),
                source: CaptureSource::Generate(TrafficConfig {
                    duration: s.duration,
                    attack: s.attack,
                    seed: s.seed,
                    ..TrafficConfig::default()
                }),
                config: s.replay_config(),
            })
            .collect();
        let reports = ServeHarness::sweep(
            || Ok(SoftwareBackend::single(model.clone())),
            &serve_scenarios,
        )
        .unwrap();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].scenario, "normal-1m");
        assert_eq!(reports[1].scenario, "dos-fd");
        assert_eq!(reports[0].bitrate_bps, 1_000_000);
        assert_eq!(reports[1].bitrate_bps, 5_000_000);
        for r in &reports {
            assert!(r.offered > 0);
            assert_eq!(r.serviced + r.dropped as usize, r.offered);
        }
        // FD-class pacing offers a strictly higher frame rate.
        assert!(reports[1].offered_fps > reports[0].offered_fps);
    }

    #[test]
    fn multi_evaluator_matches_independent_single_evaluators() {
        let models: Vec<IntegerMlp> = (0..3)
            .map(|i| {
                QuantMlp::new(MlpConfig {
                    seed: 40 + i,
                    ..MlpConfig::paper_4bit()
                })
                .unwrap()
                .export()
                .unwrap()
            })
            .collect();
        let capture = quick_capture(true, 8);
        let mut multi = MultiStreamingEvaluator::new(models.clone());
        let mut singles: Vec<StreamingEvaluator> = models
            .iter()
            .map(|m| StreamingEvaluator::new(m.clone()))
            .collect();
        for rec in capture.iter() {
            let v = multi.push(rec);
            assert_eq!(v.classes.len(), 3);
            let mut any = false;
            for (k, single) in singles.iter_mut().enumerate() {
                let sv = single.push(rec);
                assert_eq!(v.classes[k], sv.class, "model {k} diverged");
                any |= sv.flagged;
            }
            assert_eq!(v.flagged, any);
            assert_eq!(v.truth_attack, rec.label.is_attack());
        }
        for (k, single) in singles.iter().enumerate() {
            assert_eq!(&multi.confusions()[k], single.confusion(), "model {k}");
        }
        assert_eq!(multi.frames(), capture.len() as u64);
        assert_eq!(multi.fused_confusion().total(), capture.len() as u64);
        multi.reset();
        assert_eq!(multi.frames(), 0);
        assert_eq!(multi.models().len(), 3);
    }

    #[test]
    fn multi_line_rate_accounts_every_frame_per_policy() {
        use crate::deploy::{deploy_multi_ids, DetectorBundle};
        use canids_dataflow::ip::CompileConfig;
        use canids_dataset::attacks::AttackKind;

        let capture = quick_capture(true, 9);
        let bundles = vec![
            DetectorBundle::new(AttackKind::Dos, untrained_model()),
            DetectorBundle::new(AttackKind::Fuzzy, {
                QuantMlp::new(MlpConfig {
                    seed: 5,
                    ..MlpConfig::paper_4bit()
                })
                .unwrap()
                .export()
                .unwrap()
            }),
        ];
        let deployment = deploy_multi_ids(&bundles, CompileConfig::default()).unwrap();
        let mut flagged_baseline: Option<usize> = None;
        for policy in [SchedPolicy::RoundRobin, SchedPolicy::DmaBatch { batch: 32 }] {
            let report = ServeHarness::new(EcuBackend::new(&deployment))
                .replay(
                    &capture,
                    &ReplayConfig::default()
                        .with_policy(policy)
                        .with_bitrate(Bitrate::HIGH_SPEED_1M),
                )
                .unwrap();
            assert_eq!(report.sched, policy.label());
            assert_eq!(report.per_model.len(), 2);
            assert_eq!(report.offered, capture.len());
            assert_eq!(report.serviced + report.dropped as usize, report.offered);
            assert!(report.offered_fps > 1_000.0, "saturated pacing");
            assert!(report.latency.p50 <= report.latency.p99);
            assert!(report.latency.p99 <= report.latency.max);
            assert!(report.energy.expect("ECU meters energy").mean_power_w > 0.0);
            // Scheduling changes timing, never classification: with zero
            // drops the flagged count is policy-invariant.
            if report.dropped == 0 {
                match flagged_baseline {
                    None => flagged_baseline = Some(report.flagged),
                    Some(f) => assert_eq!(report.flagged, f, "{}", policy.label()),
                }
            }
        }
    }

    #[test]
    fn custom_encoder_dimension_respected() {
        use canids_can::frame::CanFrame;
        #[derive(Clone, Copy)]
        struct TinyEncoder;
        impl FrameEncoder for TinyEncoder {
            fn dim(&self) -> usize {
                4
            }
            fn encode(&self, frame: &CanFrame) -> Vec<f32> {
                let id = frame.id().base_id();
                (0..4).map(|i| f32::from((id >> i) & 1)).collect()
            }
        }
        let model = QuantMlp::new(MlpConfig {
            input_dim: 4,
            hidden: vec![4],
            ..MlpConfig::default()
        })
        .unwrap()
        .export()
        .unwrap();
        let capture = quick_capture(false, 7);
        let mut eval = StreamingEvaluator::with_encoder(model, TinyEncoder);
        for rec in capture.iter().take(20) {
            eval.push(rec);
        }
        assert_eq!(eval.frames(), 20);
    }
}
