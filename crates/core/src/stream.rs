//! Streaming (frame-at-a-time) evaluation and the line-rate harness.
//!
//! Every other evaluation path in this crate materialises a capture
//! before classifying it. A deployed IDS cannot: frames arrive one at a
//! time, paced by the wire, and the detector must keep up with a
//! saturated bus. This module provides that serving mode:
//!
//! * [`StreamingEvaluator`] — incremental featurisation + per-frame
//!   integer MLP inference + online [`ConfusionMatrix`] accounting, with
//!   all per-frame buffers reused (no per-frame feature allocation).
//!   Streaming and batch evaluation produce *identical* predictions and
//!   confusion matrices on the same capture — the equivalence tests pin
//!   this.
//! * [`replay_line_rate`] / [`line_rate_sweep`] / [`multi_line_rate`] —
//!   the historical line-rate entry points, now deprecated thin
//!   wrappers over the unified serving harness
//!   ([`crate::serve::ServeHarness`] with
//!   [`crate::serve::SoftwareBackend`] / [`crate::serve::EcuBackend`]);
//!   their reports are bit-identical to the harness path.

use canids_can::time::SimTime;
use canids_can::timing::Bitrate;
use canids_dataset::attacks::AttackProfile;
use canids_dataset::features::{FrameEncoder, IdBitsPayloadBits};
use canids_dataset::generator::{Dataset, DatasetBuilder, TrafficConfig};
use canids_dataset::record::LabeledFrame;
use canids_qnn::export::IntegerMlp;
use canids_qnn::metrics::ConfusionMatrix;
use canids_soc::ecu::{EcuConfig, IdsEcu, SchedPolicy};

use crate::error::CoreError;
use crate::serve::{
    CaptureSource, EcuBackend, ReplayConfig, ServeHarness, ServeReport, ServeScenario,
    SoftwareBackend,
};

/// One streaming verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamVerdict {
    /// Predicted class (0 = normal).
    pub class: usize,
    /// `true` when the frame was classified as an attack.
    pub flagged: bool,
    /// Ground truth of the pushed record.
    pub truth_attack: bool,
}

impl StreamVerdict {
    /// `true` when prediction and ground truth agree.
    pub fn correct(&self) -> bool {
        self.flagged == self.truth_attack
    }
}

/// Frame-at-a-time evaluator over a streamlined integer model.
///
/// # Example
///
/// ```no_run
/// use canids_core::prelude::*;
/// use canids_core::stream::StreamingEvaluator;
///
/// let report = IdsPipeline::new(PipelineConfig::dos().quick()).run()?;
/// let mut eval = StreamingEvaluator::new(report.detector.int_mlp.clone());
/// for rec in report.detector.test_set.iter() {
///     eval.push(rec);
/// }
/// // Identical to the batch test-set confusion matrix.
/// assert_eq!(*eval.confusion(), report.detector.test_cm);
/// # Ok::<(), canids_core::CoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct StreamingEvaluator<E: FrameEncoder = IdBitsPayloadBits> {
    model: IntegerMlp,
    encoder: E,
    fbuf: Vec<f32>,
    xbuf: Vec<u32>,
    cm: ConfusionMatrix,
    frames: u64,
}

impl StreamingEvaluator<IdBitsPayloadBits> {
    /// An evaluator using the paper's 75-bit frame encoding.
    pub fn new(model: IntegerMlp) -> Self {
        StreamingEvaluator::with_encoder(model, IdBitsPayloadBits)
    }
}

impl<E: FrameEncoder> StreamingEvaluator<E> {
    /// An evaluator with a custom frame encoder.
    pub fn with_encoder(model: IntegerMlp, encoder: E) -> Self {
        let dim = encoder.dim();
        StreamingEvaluator {
            model,
            encoder,
            fbuf: vec![0.0; dim],
            xbuf: vec![0; dim],
            cm: ConfusionMatrix::new(),
            frames: 0,
        }
    }

    /// Classifies one record, updating the online confusion matrix.
    ///
    /// Featurisation reuses the evaluator's buffers; the quantisation of
    /// float features to integer levels matches
    /// [`IntegerMlp::infer_bits`] exactly, so streaming and batch
    /// predictions are identical.
    pub fn push(&mut self, rec: &LabeledFrame) -> StreamVerdict {
        self.encoder.encode_into(&rec.frame, &mut self.fbuf);
        for (x, &f) in self.xbuf.iter_mut().zip(&self.fbuf) {
            *x = (f.round().max(0.0) as u32).min(self.model.input_levels);
        }
        let class = self.model.infer(&self.xbuf).class;
        let flagged = class != 0;
        let truth_attack = rec.label.is_attack();
        self.cm.record(flagged, truth_attack);
        self.frames += 1;
        StreamVerdict {
            class,
            flagged,
            truth_attack,
        }
    }

    /// The online confusion matrix over everything pushed so far.
    pub fn confusion(&self) -> &ConfusionMatrix {
        &self.cm
    }

    /// Frames classified so far.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// The wrapped model.
    pub fn model(&self) -> &IntegerMlp {
        &self.model
    }

    /// Resets the online accounting, keeping the model.
    pub fn reset(&mut self) {
        self.cm = ConfusionMatrix::new();
        self.frames = 0;
    }
}

/// One verdict of an N-detector evaluator: per-model classes plus the
/// fused (any-model) flag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiStreamVerdict {
    /// Predicted class per model, in model order (0 = normal).
    pub classes: Vec<usize>,
    /// `true` when any model classified the frame as an attack.
    pub flagged: bool,
    /// Ground truth of the pushed record.
    pub truth_attack: bool,
}

/// Frame-at-a-time evaluator over **N** integer models with **one shared
/// feature-extraction pass**: each pushed record is encoded and
/// quantised once, and every model consumes the same buffer — the
/// software mirror of the ECU's shared feature packing (N detectors, one
/// featurisation per window instead of N redundant ones).
///
/// Per-model predictions and confusion matrices are *identical* to N
/// independent [`StreamingEvaluator`]s over the same capture; the unit
/// tests pin this.
#[derive(Debug, Clone)]
pub struct MultiStreamingEvaluator<E: FrameEncoder = IdBitsPayloadBits> {
    models: Vec<IntegerMlp>,
    encoder: E,
    fbuf: Vec<f32>,
    xbuf: Vec<u32>,
    cms: Vec<ConfusionMatrix>,
    fused_cm: ConfusionMatrix,
    frames: u64,
}

impl MultiStreamingEvaluator<IdBitsPayloadBits> {
    /// An N-model evaluator using the paper's 75-bit frame encoding.
    pub fn new(models: Vec<IntegerMlp>) -> Self {
        MultiStreamingEvaluator::with_encoder(models, IdBitsPayloadBits)
    }
}

impl<E: FrameEncoder> MultiStreamingEvaluator<E> {
    /// An N-model evaluator with a custom frame encoder. All models must
    /// share the encoder's input dimension.
    pub fn with_encoder(models: Vec<IntegerMlp>, encoder: E) -> Self {
        let dim = encoder.dim();
        let n = models.len();
        MultiStreamingEvaluator {
            models,
            encoder,
            fbuf: vec![0.0; dim],
            xbuf: vec![0; dim],
            cms: vec![ConfusionMatrix::new(); n],
            fused_cm: ConfusionMatrix::new(),
            frames: 0,
        }
    }

    /// Classifies one record through every model off one encoding pass,
    /// updating the per-model and fused confusion matrices.
    pub fn push(&mut self, rec: &LabeledFrame) -> MultiStreamVerdict {
        self.encoder.encode_into(&rec.frame, &mut self.fbuf);
        let truth_attack = rec.label.is_attack();
        let mut classes = Vec::with_capacity(self.models.len());
        let mut flagged = false;
        // Same quantisation as the single-model evaluator, clamped to
        // each model's own input levels — performed once and re-clamped
        // only when a model's level count differs from the buffer's
        // (never, in the homogeneous fleets deployed here).
        let mut quantised_for: Option<u32> = None;
        for (model, cm) in self.models.iter().zip(&mut self.cms) {
            if quantised_for != Some(model.input_levels) {
                for (x, &f) in self.xbuf.iter_mut().zip(&self.fbuf) {
                    *x = (f.round().max(0.0) as u32).min(model.input_levels);
                }
                quantised_for = Some(model.input_levels);
            }
            let class = model.infer(&self.xbuf).class;
            cm.record(class != 0, truth_attack);
            flagged |= class != 0;
            classes.push(class);
        }
        self.fused_cm.record(flagged, truth_attack);
        self.frames += 1;
        MultiStreamVerdict {
            classes,
            flagged,
            truth_attack,
        }
    }

    /// Per-model confusion matrices, in model order.
    pub fn confusions(&self) -> &[ConfusionMatrix] {
        &self.cms
    }

    /// The fused (any-model-flags) confusion matrix.
    pub fn fused_confusion(&self) -> &ConfusionMatrix {
        &self.fused_cm
    }

    /// Attached models.
    pub fn models(&self) -> &[IntegerMlp] {
        &self.models
    }

    /// Frames classified so far.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Resets the online accounting, keeping the models.
    pub fn reset(&mut self) {
        for cm in &mut self.cms {
            *cm = ConfusionMatrix::new();
        }
        self.fused_cm = ConfusionMatrix::new();
        self.frames = 0;
    }
}

/// One line-rate replay scenario: which capture to generate and how fast
/// to pace it.
#[derive(Debug, Clone)]
pub struct LineRateScenario {
    /// Scenario name (appears in reports and tables).
    pub name: String,
    /// Attack to inject, if any.
    pub attack: Option<AttackProfile>,
    /// Capture length.
    pub duration: SimTime,
    /// Capture seed.
    pub seed: u64,
    /// Pacing bitrate of the replay (saturated line rate).
    pub bitrate: Bitrate,
    /// Software FIFO depth before drops.
    pub queue_depth: usize,
}

impl LineRateScenario {
    /// A saturated 1 Mb/s classic-CAN scenario.
    pub fn classic_1m(name: &str, attack: Option<AttackProfile>, duration: SimTime) -> Self {
        LineRateScenario {
            name: name.to_owned(),
            attack,
            duration,
            seed: 0x11E,
            bitrate: Bitrate::HIGH_SPEED_1M,
            queue_depth: 64,
        }
    }

    /// A CAN-FD-class scenario: classic frames paced at a 5 Mb/s data
    /// rate — the arbitration-phase format is unchanged, only the
    /// offered frame rate scales.
    pub fn fd_class(name: &str, attack: Option<AttackProfile>, duration: SimTime) -> Self {
        LineRateScenario {
            name: name.to_owned(),
            attack,
            duration,
            seed: 0x5FD,
            bitrate: Bitrate::new(5_000_000),
            queue_depth: 64,
        }
    }

    /// Synthesises this scenario's capture — the single recipe both the
    /// parallel [`line_rate_sweep`] and sequential replays (e.g. the
    /// perf-snapshot driver) use.
    pub fn generate_capture(&self) -> Dataset {
        DatasetBuilder::new(TrafficConfig {
            duration: self.duration,
            attack: self.attack,
            seed: self.seed,
            ..TrafficConfig::default()
        })
        .build()
    }
}

/// Outcome of one line-rate replay.
#[derive(Debug, Clone)]
pub struct LineRateReport {
    /// Scenario name.
    pub scenario: String,
    /// Pacing bitrate (bits per second).
    pub bitrate_bps: u32,
    /// Frames offered to the evaluator.
    pub offered: usize,
    /// Frames serviced (offered − dropped).
    pub serviced: usize,
    /// Frames dropped to software-FIFO overflow.
    pub dropped: u64,
    /// Offered load in frames/s (saturated pacing).
    pub offered_fps: f64,
    /// Measured service capacity in frames/s (serviced ÷ busy wall time).
    pub sustained_fps: f64,
    /// Median verdict latency (queueing + measured service time).
    pub p50_latency: SimTime,
    /// 99th-percentile verdict latency.
    pub p99_latency: SimTime,
    /// Worst verdict latency.
    pub max_latency: SimTime,
    /// Online confusion matrix over the serviced frames.
    pub cm: ConfusionMatrix,
}

impl LineRateReport {
    /// `true` when the evaluator kept up with the offered line rate:
    /// nothing dropped and service capacity at or above the offered load.
    pub fn keeps_up(&self) -> bool {
        self.dropped == 0 && self.sustained_fps >= self.offered_fps
    }

    /// Column headers matching [`LineRateReport::table_row`].
    pub fn table_header() -> [&'static str; 7] {
        [
            "Scenario",
            "Offered fps",
            "Sustained fps",
            "p50",
            "p99",
            "Drops",
            "Keeps up",
        ]
    }

    /// This report as one formatted row for the harness tables (the
    /// single formatting source for the example and driver binaries).
    pub fn table_row(&self) -> Vec<String> {
        vec![
            self.scenario.clone(),
            format!("{:.0}", self.offered_fps),
            format!("{:.0}", self.sustained_fps),
            format!("{:.2} us", self.p50_latency.as_micros_f64()),
            format!("{:.2} us", self.p99_latency.as_micros_f64()),
            format!("{}", self.dropped),
            if self.keeps_up() { "yes" } else { "NO" }.to_owned(),
        ]
    }
}

/// A host-contention caveat for scenario-parallel replays: present when
/// the host has fewer cores than scenarios (wall-clock service times
/// then include scheduler time-sharing), absent otherwise.
pub fn contention_note(scenario_count: usize) -> Option<String> {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    (cores < scenario_count).then(|| {
        format!(
            "note: {scenario_count} scenarios time-shared {cores} core(s); tail latencies and \
             drops include host scheduling contention (bench_summary records the uncontended, \
             sequential numbers)"
        )
    })
}

/// The unified replay configuration a [`LineRateScenario`] maps to:
/// saturated pacing at the scenario's bitrate, software FIFO at the
/// scenario's queue depth.
impl LineRateScenario {
    /// This scenario as a [`ReplayConfig`] for the serving harness.
    pub fn replay_config(&self) -> ReplayConfig {
        ReplayConfig {
            bitrate: self.bitrate,
            ecu: EcuConfig {
                queue_depth: self.queue_depth,
                ..EcuConfig::default()
            },
            ..ReplayConfig::default()
        }
    }
}

/// Maps a unified [`ServeReport`] back onto the historical software
/// line-rate report shape. The historical `offered_fps` denominator is
/// the last arrival (captures start at the bus epoch), not the span.
fn to_line_rate_report(r: ServeReport, scenario: &LineRateScenario) -> LineRateReport {
    let offered_fps = if r.last_arrival > SimTime::ZERO {
        r.offered as f64 / r.last_arrival.as_secs_f64()
    } else {
        0.0
    };
    LineRateReport {
        scenario: scenario.name.clone(),
        bitrate_bps: scenario.bitrate.bits_per_sec(),
        offered: r.offered,
        serviced: r.serviced,
        dropped: r.dropped,
        offered_fps,
        sustained_fps: r.sustained_fps.unwrap_or(0.0),
        p50_latency: r.latency.p50,
        p99_latency: r.latency.p99,
        max_latency: r.latency.max,
        cm: r.cm,
    }
}

/// Replays `capture` through a [`StreamingEvaluator`] at saturated line
/// rate, one frame at a time.
///
/// Deprecated thin wrapper over [`ServeHarness`] +
/// [`SoftwareBackend`]: arrivals are wire-paced at `scenario.bitrate`,
/// each frame's *service time* is the measured wall time of the
/// software inference, and a frame arriving while `queue_depth`
/// verdicts are pending is dropped — the same `ServiceQueue` state
/// machine the ECU service loop runs.
#[deprecated(note = "use serve::ServeHarness::replay with serve::SoftwareBackend")]
pub fn replay_line_rate(
    capture: &Dataset,
    model: &IntegerMlp,
    scenario: &LineRateScenario,
) -> LineRateReport {
    let mut harness = ServeHarness::new(SoftwareBackend::single(model.clone()));
    let report = harness
        .replay(capture, &scenario.replay_config())
        .expect("the software backend is infallible");
    to_line_rate_report(report, scenario)
}

/// Generates and replays every scenario concurrently on scoped threads
/// (capture synthesis *and* evaluation run in parallel, one thread per
/// scenario — the same pattern as [`crate::dse::sweep_bitwidths`]).
///
/// Deprecated thin wrapper over [`ServeHarness::sweep`] with a
/// [`SoftwareBackend`] factory. Results come back in scenario order.
#[deprecated(note = "use serve::ServeHarness::sweep with a serve::SoftwareBackend factory")]
pub fn line_rate_sweep(model: &IntegerMlp, scenarios: &[LineRateScenario]) -> Vec<LineRateReport> {
    let serve_scenarios: Vec<ServeScenario<'_>> = scenarios
        .iter()
        .map(|s| ServeScenario {
            name: s.name.clone(),
            source: CaptureSource::Generate(TrafficConfig {
                duration: s.duration,
                attack: s.attack,
                seed: s.seed,
                ..TrafficConfig::default()
            }),
            config: s.replay_config(),
        })
        .collect();
    let reports = ServeHarness::sweep(
        || Ok(SoftwareBackend::single(model.clone())),
        &serve_scenarios,
    )
    .expect("the software backend is infallible");
    reports
        .into_iter()
        .zip(scenarios)
        .map(|(r, s)| to_line_rate_report(r, s))
        .collect()
}

/// Outcome of one wire-paced N-detector ECU replay.
#[derive(Debug, Clone)]
pub struct MultiLineRateReport {
    /// The scheduling policy the replay ran under.
    pub policy: SchedPolicy,
    /// Attached detector count.
    pub models: usize,
    /// Pacing bitrate (bits per second).
    pub bitrate_bps: u32,
    /// Frames offered to the ECU.
    pub offered: usize,
    /// Frames serviced (offered − dropped).
    pub serviced: usize,
    /// Frames dropped to software-FIFO overflow.
    pub dropped: u64,
    /// Offered load in frames/s (saturated pacing).
    pub offered_fps: f64,
    /// Median verdict latency through the full simulated SoC path.
    pub p50_latency: SimTime,
    /// 99th-percentile verdict latency.
    pub p99_latency: SimTime,
    /// Worst verdict latency.
    pub max_latency: SimTime,
    /// Frames any detector flagged.
    pub flagged: usize,
    /// Mean board power over the replay (rail model).
    pub mean_power_w: f64,
    /// Energy per inspected message.
    pub energy_per_message_j: f64,
}

impl MultiLineRateReport {
    /// `true` when the ECU absorbed the whole offered line rate.
    pub fn keeps_up(&self) -> bool {
        self.dropped == 0
    }

    /// Column headers matching [`MultiLineRateReport::table_row`].
    pub fn table_header() -> [&'static str; 7] {
        [
            "Policy",
            "Offered fps",
            "p50",
            "p99",
            "Drops",
            "Energy/msg",
            "Keeps up",
        ]
    }

    /// This report as one formatted row for the harness tables.
    pub fn table_row(&self) -> Vec<String> {
        vec![
            self.policy.label(),
            format!("{:.0}", self.offered_fps),
            format!("{:.1} us", self.p50_latency.as_micros_f64()),
            format!("{:.1} us", self.p99_latency.as_micros_f64()),
            format!("{}", self.dropped),
            format!("{:.3} mJ", self.energy_per_message_j * 1e3),
            if self.keeps_up() { "yes" } else { "NO" }.to_owned(),
        ]
    }
}

/// Replays one capture through an N-detector ECU at saturated wire
/// pacing (`bitrate`), frame at a time, under the ECU's configured
/// [`SchedPolicy`].
///
/// Deprecated thin wrapper over [`ServeHarness`] + [`EcuBackend::over`]:
/// every frame is featurised and packed **once** inside the ECU session
/// and shared by all N models; timing is the *simulated* SoC path, so
/// the per-policy p50/p99 latencies, drops and energy are properties of
/// the modelled ECU rather than of the benchmarking host.
///
/// The ECU must be fresh (board clock at the capture's epoch) — take one
/// from [`crate::deploy::MultiIdsDeployment::fresh_ecu`] per replay.
///
/// # Errors
///
/// Propagates driver/bus errors.
#[deprecated(note = "use serve::ServeHarness::replay with serve::EcuBackend")]
pub fn multi_line_rate(
    capture: &Dataset,
    ecu: &mut IdsEcu,
    bitrate: Bitrate,
) -> Result<MultiLineRateReport, CoreError> {
    let policy = ecu.config().policy;
    let models = ecu.models().len();
    let mut harness = ServeHarness::new(EcuBackend::over(ecu));
    let r = harness.replay(
        capture,
        &ReplayConfig {
            bitrate,
            ..ReplayConfig::default()
        },
    )?;
    let offered_fps = if r.last_arrival > SimTime::ZERO {
        r.offered as f64 / r.last_arrival.as_secs_f64()
    } else {
        0.0
    };
    let energy = r.energy.unwrap_or_default();
    Ok(MultiLineRateReport {
        policy,
        models,
        bitrate_bps: bitrate.bits_per_sec(),
        offered: r.offered,
        serviced: r.serviced,
        dropped: r.dropped,
        offered_fps,
        p50_latency: r.latency.p50,
        p99_latency: r.latency.p99,
        max_latency: r.latency.max,
        flagged: r.flagged,
        mean_power_w: energy.mean_power_w,
        energy_per_message_j: energy.energy_per_message_j,
    })
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use canids_dataset::attacks::BurstSchedule;
    use canids_dataset::features::FrameEncoder;
    use canids_qnn::mlp::{MlpConfig, QuantMlp};

    fn untrained_model() -> IntegerMlp {
        QuantMlp::new(MlpConfig::paper_4bit())
            .unwrap()
            .export()
            .unwrap()
    }

    fn quick_capture(attack: bool, seed: u64) -> Dataset {
        DatasetBuilder::new(TrafficConfig {
            duration: SimTime::from_millis(200),
            attack: attack.then(|| AttackProfile::dos().with_schedule(BurstSchedule::Continuous)),
            seed,
            ..TrafficConfig::default()
        })
        .build()
    }

    #[test]
    fn streaming_matches_batch_exactly() {
        let model = untrained_model();
        let capture = quick_capture(true, 3);
        // Batch path: materialise features, then classify.
        let enc = IdBitsPayloadBits;
        let (xs, ys) = capture.to_xy(&enc);
        let mut batch_cm = ConfusionMatrix::new();
        let mut batch_preds = Vec::with_capacity(xs.len());
        for (x, &y) in xs.iter().zip(&ys) {
            let pred = model.infer_bits(x).class;
            batch_preds.push(pred);
            batch_cm.record(pred != 0, y != 0);
        }
        // Streaming path: one record at a time.
        let mut eval = StreamingEvaluator::new(model.clone());
        let stream_preds: Vec<usize> = capture.iter().map(|rec| eval.push(rec).class).collect();
        assert_eq!(stream_preds, batch_preds, "identical predictions");
        assert_eq!(*eval.confusion(), batch_cm, "identical confusion matrix");
        assert_eq!(eval.frames(), capture.len() as u64);
    }

    #[test]
    fn verdicts_carry_truth_and_correctness() {
        let model = untrained_model();
        let capture = quick_capture(true, 4);
        let mut eval = StreamingEvaluator::new(model);
        for rec in capture.iter().take(50) {
            let v = eval.push(rec);
            assert_eq!(v.truth_attack, rec.label.is_attack());
            assert_eq!(v.correct(), v.flagged == rec.label.is_attack());
            assert_eq!(v.flagged, v.class != 0);
        }
    }

    #[test]
    fn reset_clears_accounting_but_keeps_model() {
        let model = untrained_model();
        let capture = quick_capture(false, 5);
        let mut eval = StreamingEvaluator::new(model);
        for rec in capture.iter().take(10) {
            eval.push(rec);
        }
        assert_eq!(eval.frames(), 10);
        eval.reset();
        assert_eq!(eval.frames(), 0);
        assert_eq!(eval.confusion().total(), 0);
        assert_eq!(eval.model().layer_dims()[0], (75, 64));
    }

    #[test]
    fn line_rate_replay_accounts_every_frame() {
        let model = untrained_model();
        let capture = quick_capture(true, 6);
        let scenario = LineRateScenario::classic_1m("dos-1m", None, SimTime::from_millis(200));
        let report = replay_line_rate(&capture, &model, &scenario);
        assert_eq!(report.offered, capture.len());
        assert_eq!(report.serviced + report.dropped as usize, report.offered);
        assert_eq!(report.cm.total() as usize, report.serviced);
        assert!(report.offered_fps > 1_000.0, "saturated 1 Mb/s pacing");
        assert!(report.p50_latency <= report.p99_latency);
        assert!(report.p99_latency <= report.max_latency);
        assert!(report.max_latency > SimTime::ZERO);
        // Release builds comfortably sustain classic-CAN line rate; debug
        // builds are not a performance statement, so only gate there.
        if !cfg!(debug_assertions) {
            assert!(
                report.keeps_up(),
                "sustained {:.0} fps vs offered {:.0} fps, dropped {}",
                report.sustained_fps,
                report.offered_fps,
                report.dropped
            );
        }
    }

    #[test]
    fn sweep_runs_scenarios_in_parallel_and_in_order() {
        let model = untrained_model();
        let scenarios = vec![
            LineRateScenario::classic_1m("normal-1m", None, SimTime::from_millis(120)),
            LineRateScenario::fd_class(
                "dos-fd",
                Some(AttackProfile::dos().with_schedule(BurstSchedule::Continuous)),
                SimTime::from_millis(120),
            ),
        ];
        let reports = line_rate_sweep(&model, &scenarios);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].scenario, "normal-1m");
        assert_eq!(reports[1].scenario, "dos-fd");
        assert_eq!(reports[0].bitrate_bps, 1_000_000);
        assert_eq!(reports[1].bitrate_bps, 5_000_000);
        for r in &reports {
            assert!(r.offered > 0);
            assert_eq!(r.serviced + r.dropped as usize, r.offered);
        }
        // FD-class pacing offers a strictly higher frame rate.
        assert!(reports[1].offered_fps > reports[0].offered_fps);
    }

    #[test]
    fn multi_evaluator_matches_independent_single_evaluators() {
        let models: Vec<IntegerMlp> = (0..3)
            .map(|i| {
                QuantMlp::new(MlpConfig {
                    seed: 40 + i,
                    ..MlpConfig::paper_4bit()
                })
                .unwrap()
                .export()
                .unwrap()
            })
            .collect();
        let capture = quick_capture(true, 8);
        let mut multi = MultiStreamingEvaluator::new(models.clone());
        let mut singles: Vec<StreamingEvaluator> = models
            .iter()
            .map(|m| StreamingEvaluator::new(m.clone()))
            .collect();
        for rec in capture.iter() {
            let v = multi.push(rec);
            assert_eq!(v.classes.len(), 3);
            let mut any = false;
            for (k, single) in singles.iter_mut().enumerate() {
                let sv = single.push(rec);
                assert_eq!(v.classes[k], sv.class, "model {k} diverged");
                any |= sv.flagged;
            }
            assert_eq!(v.flagged, any);
            assert_eq!(v.truth_attack, rec.label.is_attack());
        }
        for (k, single) in singles.iter().enumerate() {
            assert_eq!(&multi.confusions()[k], single.confusion(), "model {k}");
        }
        assert_eq!(multi.frames(), capture.len() as u64);
        assert_eq!(multi.fused_confusion().total(), capture.len() as u64);
        multi.reset();
        assert_eq!(multi.frames(), 0);
        assert_eq!(multi.models().len(), 3);
    }

    #[test]
    fn multi_line_rate_accounts_every_frame_per_policy() {
        use crate::deploy::{deploy_multi_ids, DetectorBundle};
        use canids_dataflow::ip::CompileConfig;
        use canids_dataset::attacks::AttackKind;

        let capture = quick_capture(true, 9);
        let bundles = vec![
            DetectorBundle::new(AttackKind::Dos, untrained_model()),
            DetectorBundle::new(AttackKind::Fuzzy, {
                QuantMlp::new(MlpConfig {
                    seed: 5,
                    ..MlpConfig::paper_4bit()
                })
                .unwrap()
                .export()
                .unwrap()
            }),
        ];
        let deployment = deploy_multi_ids(&bundles, CompileConfig::default()).unwrap();
        let mut flagged_baseline: Option<usize> = None;
        for policy in [SchedPolicy::RoundRobin, SchedPolicy::DmaBatch { batch: 32 }] {
            let mut ecu = deployment
                .fresh_ecu(canids_soc::ecu::EcuConfig {
                    policy,
                    ..canids_soc::ecu::EcuConfig::default()
                })
                .unwrap();
            let report = multi_line_rate(&capture, &mut ecu, Bitrate::HIGH_SPEED_1M).unwrap();
            assert_eq!(report.policy, policy);
            assert_eq!(report.models, 2);
            assert_eq!(report.offered, capture.len());
            assert_eq!(report.serviced + report.dropped as usize, report.offered);
            assert!(report.offered_fps > 1_000.0, "saturated pacing");
            assert!(report.p50_latency <= report.p99_latency);
            assert!(report.p99_latency <= report.max_latency);
            assert!(report.mean_power_w > 0.0);
            // Scheduling changes timing, never classification: with zero
            // drops the flagged count is policy-invariant.
            if report.dropped == 0 {
                match flagged_baseline {
                    None => flagged_baseline = Some(report.flagged),
                    Some(f) => assert_eq!(report.flagged, f, "{}", policy.label()),
                }
            }
        }
    }

    #[test]
    fn custom_encoder_dimension_respected() {
        use canids_can::frame::CanFrame;
        #[derive(Clone, Copy)]
        struct TinyEncoder;
        impl FrameEncoder for TinyEncoder {
            fn dim(&self) -> usize {
                4
            }
            fn encode(&self, frame: &CanFrame) -> Vec<f32> {
                let id = frame.id().base_id();
                (0..4).map(|i| f32::from((id >> i) & 1)).collect()
            }
        }
        let model = QuantMlp::new(MlpConfig {
            input_dim: 4,
            hidden: vec![4],
            ..MlpConfig::default()
        })
        .unwrap()
        .export()
        .unwrap();
        let capture = quick_capture(false, 7);
        let mut eval = StreamingEvaluator::with_encoder(model, TinyEncoder);
        for rec in capture.iter().take(20) {
            eval.push(rec);
        }
        assert_eq!(eval.frames(), 20);
    }
}
