//! Streaming (frame-at-a-time) evaluation and the line-rate harness.
//!
//! Every other evaluation path in this crate materialises a capture
//! before classifying it. A deployed IDS cannot: frames arrive one at a
//! time, paced by the wire, and the detector must keep up with a
//! saturated bus. This module provides that serving mode:
//!
//! * [`StreamingEvaluator`] — incremental featurisation + per-frame
//!   integer MLP inference + online [`ConfusionMatrix`] accounting, with
//!   all per-frame buffers reused (no per-frame feature allocation).
//!   Streaming and batch evaluation produce *identical* predictions and
//!   confusion matrices on the same capture — the equivalence tests pin
//!   this.
//! * [`replay_line_rate`] — replays a capture against a
//!   `StreamingEvaluator` at true bus pacing (saturated 1 Mb/s classic
//!   CAN, or a CAN-FD-class rate), measuring each frame's real software
//!   service time and reporting sustained frames/s, p50/p99/max verdict
//!   latency and FIFO drops.
//! * [`line_rate_sweep`] — generates and evaluates several scenarios
//!   (attack × bitrate) concurrently on scoped threads, mirroring the
//!   bit-width DSE sweep.

use std::time::Instant;

use canids_can::time::SimTime;
use canids_can::timing::Bitrate;
use canids_dataset::attacks::AttackProfile;
use canids_dataset::features::{FrameEncoder, IdBitsPayloadBits};
use canids_dataset::generator::{Dataset, DatasetBuilder, TrafficConfig};
use canids_dataset::record::LabeledFrame;
use canids_dataset::stream::paced_records;
use canids_qnn::export::IntegerMlp;
use canids_qnn::metrics::ConfusionMatrix;
use canids_soc::ecu::ServiceQueue;

/// One streaming verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamVerdict {
    /// Predicted class (0 = normal).
    pub class: usize,
    /// `true` when the frame was classified as an attack.
    pub flagged: bool,
    /// Ground truth of the pushed record.
    pub truth_attack: bool,
}

impl StreamVerdict {
    /// `true` when prediction and ground truth agree.
    pub fn correct(&self) -> bool {
        self.flagged == self.truth_attack
    }
}

/// Frame-at-a-time evaluator over a streamlined integer model.
///
/// # Example
///
/// ```no_run
/// use canids_core::prelude::*;
/// use canids_core::stream::StreamingEvaluator;
///
/// let report = IdsPipeline::new(PipelineConfig::dos().quick()).run()?;
/// let mut eval = StreamingEvaluator::new(report.detector.int_mlp.clone());
/// for rec in report.detector.test_set.iter() {
///     eval.push(rec);
/// }
/// // Identical to the batch test-set confusion matrix.
/// assert_eq!(*eval.confusion(), report.detector.test_cm);
/// # Ok::<(), canids_core::CoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct StreamingEvaluator<E: FrameEncoder = IdBitsPayloadBits> {
    model: IntegerMlp,
    encoder: E,
    fbuf: Vec<f32>,
    xbuf: Vec<u32>,
    cm: ConfusionMatrix,
    frames: u64,
}

impl StreamingEvaluator<IdBitsPayloadBits> {
    /// An evaluator using the paper's 75-bit frame encoding.
    pub fn new(model: IntegerMlp) -> Self {
        StreamingEvaluator::with_encoder(model, IdBitsPayloadBits)
    }
}

impl<E: FrameEncoder> StreamingEvaluator<E> {
    /// An evaluator with a custom frame encoder.
    pub fn with_encoder(model: IntegerMlp, encoder: E) -> Self {
        let dim = encoder.dim();
        StreamingEvaluator {
            model,
            encoder,
            fbuf: vec![0.0; dim],
            xbuf: vec![0; dim],
            cm: ConfusionMatrix::new(),
            frames: 0,
        }
    }

    /// Classifies one record, updating the online confusion matrix.
    ///
    /// Featurisation reuses the evaluator's buffers; the quantisation of
    /// float features to integer levels matches
    /// [`IntegerMlp::infer_bits`] exactly, so streaming and batch
    /// predictions are identical.
    pub fn push(&mut self, rec: &LabeledFrame) -> StreamVerdict {
        self.encoder.encode_into(&rec.frame, &mut self.fbuf);
        for (x, &f) in self.xbuf.iter_mut().zip(&self.fbuf) {
            *x = (f.round().max(0.0) as u32).min(self.model.input_levels);
        }
        let class = self.model.infer(&self.xbuf).class;
        let flagged = class != 0;
        let truth_attack = rec.label.is_attack();
        self.cm.record(flagged, truth_attack);
        self.frames += 1;
        StreamVerdict {
            class,
            flagged,
            truth_attack,
        }
    }

    /// The online confusion matrix over everything pushed so far.
    pub fn confusion(&self) -> &ConfusionMatrix {
        &self.cm
    }

    /// Frames classified so far.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// The wrapped model.
    pub fn model(&self) -> &IntegerMlp {
        &self.model
    }

    /// Resets the online accounting, keeping the model.
    pub fn reset(&mut self) {
        self.cm = ConfusionMatrix::new();
        self.frames = 0;
    }
}

/// One line-rate replay scenario: which capture to generate and how fast
/// to pace it.
#[derive(Debug, Clone)]
pub struct LineRateScenario {
    /// Scenario name (appears in reports and tables).
    pub name: String,
    /// Attack to inject, if any.
    pub attack: Option<AttackProfile>,
    /// Capture length.
    pub duration: SimTime,
    /// Capture seed.
    pub seed: u64,
    /// Pacing bitrate of the replay (saturated line rate).
    pub bitrate: Bitrate,
    /// Software FIFO depth before drops.
    pub queue_depth: usize,
}

impl LineRateScenario {
    /// A saturated 1 Mb/s classic-CAN scenario.
    pub fn classic_1m(name: &str, attack: Option<AttackProfile>, duration: SimTime) -> Self {
        LineRateScenario {
            name: name.to_owned(),
            attack,
            duration,
            seed: 0x11E,
            bitrate: Bitrate::HIGH_SPEED_1M,
            queue_depth: 64,
        }
    }

    /// A CAN-FD-class scenario: classic frames paced at a 5 Mb/s data
    /// rate — the arbitration-phase format is unchanged, only the
    /// offered frame rate scales.
    pub fn fd_class(name: &str, attack: Option<AttackProfile>, duration: SimTime) -> Self {
        LineRateScenario {
            name: name.to_owned(),
            attack,
            duration,
            seed: 0x5FD,
            bitrate: Bitrate::new(5_000_000),
            queue_depth: 64,
        }
    }

    /// Synthesises this scenario's capture — the single recipe both the
    /// parallel [`line_rate_sweep`] and sequential replays (e.g. the
    /// perf-snapshot driver) use.
    pub fn generate_capture(&self) -> Dataset {
        DatasetBuilder::new(TrafficConfig {
            duration: self.duration,
            attack: self.attack,
            seed: self.seed,
            ..TrafficConfig::default()
        })
        .build()
    }
}

/// Outcome of one line-rate replay.
#[derive(Debug, Clone)]
pub struct LineRateReport {
    /// Scenario name.
    pub scenario: String,
    /// Pacing bitrate (bits per second).
    pub bitrate_bps: u32,
    /// Frames offered to the evaluator.
    pub offered: usize,
    /// Frames serviced (offered − dropped).
    pub serviced: usize,
    /// Frames dropped to software-FIFO overflow.
    pub dropped: u64,
    /// Offered load in frames/s (saturated pacing).
    pub offered_fps: f64,
    /// Measured service capacity in frames/s (serviced ÷ busy wall time).
    pub sustained_fps: f64,
    /// Median verdict latency (queueing + measured service time).
    pub p50_latency: SimTime,
    /// 99th-percentile verdict latency.
    pub p99_latency: SimTime,
    /// Worst verdict latency.
    pub max_latency: SimTime,
    /// Online confusion matrix over the serviced frames.
    pub cm: ConfusionMatrix,
}

impl LineRateReport {
    /// `true` when the evaluator kept up with the offered line rate:
    /// nothing dropped and service capacity at or above the offered load.
    pub fn keeps_up(&self) -> bool {
        self.dropped == 0 && self.sustained_fps >= self.offered_fps
    }

    /// Column headers matching [`LineRateReport::table_row`].
    pub fn table_header() -> [&'static str; 7] {
        [
            "Scenario",
            "Offered fps",
            "Sustained fps",
            "p50",
            "p99",
            "Drops",
            "Keeps up",
        ]
    }

    /// This report as one formatted row for the harness tables (the
    /// single formatting source for the example and driver binaries).
    pub fn table_row(&self) -> Vec<String> {
        vec![
            self.scenario.clone(),
            format!("{:.0}", self.offered_fps),
            format!("{:.0}", self.sustained_fps),
            format!("{:.2} us", self.p50_latency.as_micros_f64()),
            format!("{:.2} us", self.p99_latency.as_micros_f64()),
            format!("{}", self.dropped),
            if self.keeps_up() { "yes" } else { "NO" }.to_owned(),
        ]
    }
}

/// A host-contention caveat for scenario-parallel replays: present when
/// the host has fewer cores than scenarios (wall-clock service times
/// then include scheduler time-sharing), absent otherwise.
pub fn contention_note(scenario_count: usize) -> Option<String> {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    (cores < scenario_count).then(|| {
        format!(
            "note: {scenario_count} scenarios time-shared {cores} core(s); tail latencies and \
             drops include host scheduling contention (bench_summary records the uncontended, \
             sequential numbers)"
        )
    })
}

fn percentile(sorted: &[SimTime], q: f64) -> SimTime {
    if sorted.is_empty() {
        return SimTime::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Replays `capture` through a [`StreamingEvaluator`] at saturated line
/// rate, one frame at a time.
///
/// Arrivals come from [`paced_records`] (true wire pacing at
/// `scenario.bitrate`); each frame's *service time* is the measured wall
/// time of the software inference, so the latency distribution and the
/// sustained rate reflect what this host can actually serve. A frame
/// arriving while `queue_depth` verdicts are still pending is dropped —
/// the same [`ServiceQueue`] state machine the ECU service loop runs, so
/// the two paths share one drop/queue policy by construction.
pub fn replay_line_rate(
    capture: &Dataset,
    model: &IntegerMlp,
    scenario: &LineRateScenario,
) -> LineRateReport {
    let mut eval = StreamingEvaluator::new(model.clone());
    // Warm the evaluator outside the clock (page in weights, settle
    // caches), then clear the online accounting it touched.
    if let Some(first) = capture.records().first() {
        for _ in 0..8 {
            eval.push(first);
        }
        eval.reset();
    }
    let mut latencies: Vec<SimTime> = Vec::with_capacity(capture.len());
    let mut queue = ServiceQueue::new(scenario.queue_depth);
    let mut dropped = 0u64;
    let mut busy_wall_ns = 0u128;
    let mut last_arrival = SimTime::ZERO;
    let mut offered = 0usize;

    for rec in paced_records(capture, scenario.bitrate) {
        let arrival = rec.timestamp;
        offered += 1;
        last_arrival = arrival;
        if !queue.admit(arrival) {
            dropped += 1;
            continue;
        }
        let t0 = Instant::now();
        let _ = eval.push(&rec);
        let wall = t0.elapsed().as_nanos();
        busy_wall_ns += wall;
        // At least 1 ns of simulated service so completions advance.
        let service = SimTime::from_nanos((wall as u64).max(1));
        let start = queue.start_time(arrival);
        let completed_at = queue.serve(start, service);
        latencies.push(completed_at.saturating_sub(arrival));
    }

    latencies.sort_unstable();
    let serviced = latencies.len();
    let offered_fps = if last_arrival > SimTime::ZERO {
        offered as f64 / last_arrival.as_secs_f64()
    } else {
        0.0
    };
    let sustained_fps = if busy_wall_ns > 0 {
        serviced as f64 / (busy_wall_ns as f64 / 1e9)
    } else {
        0.0
    };
    LineRateReport {
        scenario: scenario.name.clone(),
        bitrate_bps: scenario.bitrate.bits_per_sec(),
        offered,
        serviced,
        dropped,
        offered_fps,
        sustained_fps,
        p50_latency: percentile(&latencies, 0.50),
        p99_latency: percentile(&latencies, 0.99),
        max_latency: latencies.last().copied().unwrap_or(SimTime::ZERO),
        cm: *eval.confusion(),
    }
}

/// Generates and replays every scenario concurrently on scoped threads
/// (capture synthesis *and* evaluation run in parallel, one thread per
/// scenario — the same pattern as [`crate::dse::sweep_bitwidths`]).
///
/// Results come back in scenario order.
pub fn line_rate_sweep(model: &IntegerMlp, scenarios: &[LineRateScenario]) -> Vec<LineRateReport> {
    crate::par::scoped_map(scenarios, |scenario| {
        replay_line_rate(&scenario.generate_capture(), model, scenario)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use canids_dataset::attacks::BurstSchedule;
    use canids_dataset::features::FrameEncoder;
    use canids_qnn::mlp::{MlpConfig, QuantMlp};

    fn untrained_model() -> IntegerMlp {
        QuantMlp::new(MlpConfig::paper_4bit())
            .unwrap()
            .export()
            .unwrap()
    }

    fn quick_capture(attack: bool, seed: u64) -> Dataset {
        DatasetBuilder::new(TrafficConfig {
            duration: SimTime::from_millis(200),
            attack: attack.then(|| AttackProfile::dos().with_schedule(BurstSchedule::Continuous)),
            seed,
            ..TrafficConfig::default()
        })
        .build()
    }

    #[test]
    fn streaming_matches_batch_exactly() {
        let model = untrained_model();
        let capture = quick_capture(true, 3);
        // Batch path: materialise features, then classify.
        let enc = IdBitsPayloadBits;
        let (xs, ys) = capture.to_xy(&enc);
        let mut batch_cm = ConfusionMatrix::new();
        let mut batch_preds = Vec::with_capacity(xs.len());
        for (x, &y) in xs.iter().zip(&ys) {
            let pred = model.infer_bits(x).class;
            batch_preds.push(pred);
            batch_cm.record(pred != 0, y != 0);
        }
        // Streaming path: one record at a time.
        let mut eval = StreamingEvaluator::new(model.clone());
        let stream_preds: Vec<usize> = capture.iter().map(|rec| eval.push(rec).class).collect();
        assert_eq!(stream_preds, batch_preds, "identical predictions");
        assert_eq!(*eval.confusion(), batch_cm, "identical confusion matrix");
        assert_eq!(eval.frames(), capture.len() as u64);
    }

    #[test]
    fn verdicts_carry_truth_and_correctness() {
        let model = untrained_model();
        let capture = quick_capture(true, 4);
        let mut eval = StreamingEvaluator::new(model);
        for rec in capture.iter().take(50) {
            let v = eval.push(rec);
            assert_eq!(v.truth_attack, rec.label.is_attack());
            assert_eq!(v.correct(), v.flagged == rec.label.is_attack());
            assert_eq!(v.flagged, v.class != 0);
        }
    }

    #[test]
    fn reset_clears_accounting_but_keeps_model() {
        let model = untrained_model();
        let capture = quick_capture(false, 5);
        let mut eval = StreamingEvaluator::new(model);
        for rec in capture.iter().take(10) {
            eval.push(rec);
        }
        assert_eq!(eval.frames(), 10);
        eval.reset();
        assert_eq!(eval.frames(), 0);
        assert_eq!(eval.confusion().total(), 0);
        assert_eq!(eval.model().layer_dims()[0], (75, 64));
    }

    #[test]
    fn line_rate_replay_accounts_every_frame() {
        let model = untrained_model();
        let capture = quick_capture(true, 6);
        let scenario = LineRateScenario::classic_1m("dos-1m", None, SimTime::from_millis(200));
        let report = replay_line_rate(&capture, &model, &scenario);
        assert_eq!(report.offered, capture.len());
        assert_eq!(report.serviced + report.dropped as usize, report.offered);
        assert_eq!(report.cm.total() as usize, report.serviced);
        assert!(report.offered_fps > 1_000.0, "saturated 1 Mb/s pacing");
        assert!(report.p50_latency <= report.p99_latency);
        assert!(report.p99_latency <= report.max_latency);
        assert!(report.max_latency > SimTime::ZERO);
        // Release builds comfortably sustain classic-CAN line rate; debug
        // builds are not a performance statement, so only gate there.
        if !cfg!(debug_assertions) {
            assert!(
                report.keeps_up(),
                "sustained {:.0} fps vs offered {:.0} fps, dropped {}",
                report.sustained_fps,
                report.offered_fps,
                report.dropped
            );
        }
    }

    #[test]
    fn sweep_runs_scenarios_in_parallel_and_in_order() {
        let model = untrained_model();
        let scenarios = vec![
            LineRateScenario::classic_1m("normal-1m", None, SimTime::from_millis(120)),
            LineRateScenario::fd_class(
                "dos-fd",
                Some(AttackProfile::dos().with_schedule(BurstSchedule::Continuous)),
                SimTime::from_millis(120),
            ),
        ];
        let reports = line_rate_sweep(&model, &scenarios);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].scenario, "normal-1m");
        assert_eq!(reports[1].scenario, "dos-fd");
        assert_eq!(reports[0].bitrate_bps, 1_000_000);
        assert_eq!(reports[1].bitrate_bps, 5_000_000);
        for r in &reports {
            assert!(r.offered > 0);
            assert_eq!(r.serviced + r.dropped as usize, r.offered);
        }
        // FD-class pacing offers a strictly higher frame rate.
        assert!(reports[1].offered_fps > reports[0].offered_fps);
    }

    #[test]
    fn custom_encoder_dimension_respected() {
        use canids_can::frame::CanFrame;
        #[derive(Clone, Copy)]
        struct TinyEncoder;
        impl FrameEncoder for TinyEncoder {
            fn dim(&self) -> usize {
                4
            }
            fn encode(&self, frame: &CanFrame) -> Vec<f32> {
                let id = frame.id().base_id();
                (0..4).map(|i| f32::from((id >> i) & 1)).collect()
            }
        }
        let model = QuantMlp::new(MlpConfig {
            input_dim: 4,
            hidden: vec![4],
            ..MlpConfig::default()
        })
        .unwrap()
        .export()
        .unwrap();
        let capture = quick_capture(false, 7);
        let mut eval = StreamingEvaluator::with_encoder(model, TinyEncoder);
        for rec in capture.iter().take(20) {
            eval.push(rec);
        }
        assert_eq!(eval.frames(), 20);
    }
}
