//! The N-detector deployment engine (the paper's "multiple models can be
//! executed simultaneously for a comprehensive IDS integration"), grown
//! from a fixed DoS+Fuzzy pair into a plan → compile → serve subsystem:
//!
//! 1. **Planning** — [`DeploymentPlan::build`] takes N [`DetectorBundle`]s
//!    plus a target [`Device`] and allocates a **per-model folding
//!    budget**: every model starts at the fastest rung of a
//!    throughput-target ladder (greedy latency-first) and the allocator
//!    folds the largest offender one rung deeper at a time — re-searching
//!    its [`canids_dataflow::folding::LayerFolding`] configuration
//!    against the device's capacity — until the summed
//!    [`ResourceEstimate`] fits. When even fully-sequential folding
//!    cannot place a model, [`CoreError::PlanOverflow`] names it.
//! 2. **Compilation** — [`DeploymentPlan::deploy`] compiles each bundle
//!    with its planned folding goal (scenario-parallel on scoped
//!    threads), attaches every IP to one simulated ZCU104 and wraps the
//!    board in an [`IdsEcu`] whose [`SchedPolicy`] is first-class
//!    configuration.
//! 3. **Serving** — the ECU featurises and packs each frame **once** and
//!    feeds the same packed words to all N models (see
//!    [`canids_soc::ecu::EcuStream::push`]); wire-paced N-detector
//!    replays live in [`crate::serve::ServeHarness`] over
//!    [`crate::serve::EcuBackend`].
//!
//! Headroom is computed against the device's *true* remaining resources
//! ([`Device::headroom_after`]) — an exhausted resource class reports
//! zero headroom instead of fabricating capacity.

use canids_dataflow::folding::{auto_fold, FoldingConfig, FoldingGoal};
use canids_dataflow::graph::DataflowGraph;
use canids_dataflow::ip::{AcceleratorIp, CompileConfig};
use canids_dataflow::resources::{estimate_resources, Device, ResourceEstimate};
use canids_dataflow::DataflowError;
use canids_dataset::attacks::AttackKind;
use canids_qnn::export::IntegerMlp;
use canids_soc::board::{BoardConfig, Zcu104Board};
use canids_soc::ecu::{EcuConfig, IdsEcu, SchedPolicy};

use crate::error::CoreError;

/// A named detector ready for deployment.
#[derive(Debug, Clone)]
pub struct DetectorBundle {
    /// Which attack this detector was trained for.
    pub kind: AttackKind,
    /// The streamlined network.
    pub model: IntegerMlp,
}

impl DetectorBundle {
    /// Bundles a model under its attack kind.
    pub fn new(kind: AttackKind, model: IntegerMlp) -> Self {
        DetectorBundle { kind, model }
    }
}

/// Parameters of the folding-budget allocation.
#[derive(Debug, Clone)]
pub struct PlanConfig {
    /// Target device.
    pub device: Device,
    /// PL clock every model is planned at.
    pub clock_hz: u64,
    /// Ladder of per-model throughput targets, fastest first. The
    /// allocator starts every model at the top (latency-first) and
    /// demotes one rung at a time; below the last rung lies
    /// fully-sequential folding.
    pub fps_ladder: Vec<f64>,
}

impl Default for PlanConfig {
    fn default() -> Self {
        PlanConfig {
            device: Device::ZCU104,
            clock_hz: 200_000_000,
            // 1M frames/s (the single-model deployment default) down to
            // the paper's classic-CAN line rate.
            fps_ladder: vec![1_000_000.0, 250_000.0, 100_000.0, 25_000.0, 8_300.0],
        }
    }
}

/// One model's allocated folding budget.
#[derive(Debug, Clone)]
pub struct ModelPlan {
    /// The bundle's attack kind.
    pub kind: AttackKind,
    /// Unique IP-core name (kind slug, disambiguated per duplicate).
    pub name: String,
    /// The folding goal the allocator settled on.
    pub goal: FoldingGoal,
    /// The concrete per-layer folding that goal selects.
    pub folding: FoldingConfig,
    /// Estimated resources at that folding.
    pub resources: ResourceEstimate,
    /// Peak streaming throughput at that folding.
    pub peak_fps: f64,
    /// How many rungs below the fastest target the allocator had to
    /// fold this model (0 = latency-first budget granted in full).
    pub demotions: usize,
}

/// Per-model candidate foldings, fastest first.
struct RungLadder {
    rungs: Vec<(FoldingGoal, FoldingConfig, ResourceEstimate, f64)>,
}

impl RungLadder {
    fn build(graph: &DataflowGraph, config: &PlanConfig) -> Result<Self, CoreError> {
        let mut rungs: Vec<(FoldingGoal, FoldingConfig, ResourceEstimate, f64)> = Vec::new();
        let goals = config
            .fps_ladder
            .iter()
            .map(|&fps| FoldingGoal::TargetFps {
                fps,
                clock_hz: config.clock_hz,
            })
            .chain(std::iter::once(FoldingGoal::MinResource));
        for goal in goals {
            let folding = match auto_fold(graph, goal) {
                Ok(f) => f,
                // A target beyond this topology's reach just isn't a
                // rung; deeper (cheaper) rungs follow.
                Err(DataflowError::TargetUnreachable { .. }) => continue,
                Err(e) => return Err(e.into()),
            };
            let resources = estimate_resources(graph, &folding);
            let peak_fps = config.clock_hz as f64 / folding.initiation_interval(graph) as f64;
            // Skip rungs that do not actually shrink the design — a
            // demotion must buy resources.
            if rungs.last().is_some_and(|(_, _, r, _)| *r == resources) {
                continue;
            }
            rungs.push((goal, folding, resources, peak_fps));
        }
        debug_assert!(!rungs.is_empty(), "MinResource always folds");
        Ok(RungLadder { rungs })
    }
}

fn component(r: ResourceEstimate, class: &'static str) -> u64 {
    match class {
        "LUT" => r.lut,
        "FF" => r.ff,
        "BRAM36" => r.bram36,
        "DSP" => r.dsp,
        _ => unreachable!("unknown resource class {class}"),
    }
}

/// Unique per-bundle IP-core names: `dos-ids`, and `dos-ids-2`,
/// `dos-ids-3`, … for folded duplicates of the same kind.
fn bundle_names(bundles: &[DetectorBundle]) -> Vec<String> {
    let mut counts: std::collections::BTreeMap<&'static str, usize> =
        std::collections::BTreeMap::new();
    bundles
        .iter()
        .map(|b| {
            let slug = b.kind.slug();
            let n = counts.entry(slug).or_insert(0);
            *n += 1;
            if *n == 1 {
                format!("{slug}-ids")
            } else {
                format!("{slug}-ids-{n}")
            }
        })
        .collect()
}

/// A fitted N-detector plan: per-model folding budgets whose sum is
/// proven to fit the device.
#[derive(Debug, Clone)]
pub struct DeploymentPlan {
    /// Target device.
    pub device: Device,
    /// PL clock the budgets were planned at.
    pub clock_hz: u64,
    /// Per-model budgets, in bundle order.
    pub models: Vec<ModelPlan>,
    /// Summed resource estimate (`≤` device capacity in every class).
    pub total_resources: ResourceEstimate,
    /// Peak device utilisation fraction of the plan.
    pub utilization: f64,
    /// Additional copies of the largest planned IP that still fit in the
    /// true remaining resources.
    pub headroom: u64,
}

impl DeploymentPlan {
    /// Allocates per-model folding budgets for `bundles` on
    /// `config.device` — greedy latency-first with a fold-deeper
    /// fallback.
    ///
    /// # Errors
    ///
    /// [`CoreError::EmptyDeployment`] without bundles;
    /// [`CoreError::PlanOverflow`] naming the offending model when even
    /// fully-sequential folding cannot fit the set; lowering errors
    /// otherwise.
    pub fn build(bundles: &[DetectorBundle], config: &PlanConfig) -> Result<Self, CoreError> {
        if bundles.is_empty() {
            return Err(CoreError::EmptyDeployment);
        }
        let names = bundle_names(bundles);
        let mut ladders = Vec::with_capacity(bundles.len());
        for bundle in bundles {
            let graph = DataflowGraph::from_integer_mlp(&bundle.model)?;
            ladders.push(RungLadder::build(&graph, config)?);
        }

        // Greedy: everyone starts latency-first; while the sum
        // overflows, fold the largest offender (in the overflowing
        // class) one rung deeper.
        let mut rung = vec![0usize; bundles.len()];
        let total = loop {
            let total = rung
                .iter()
                .zip(&ladders)
                .fold(ResourceEstimate::default(), |acc, (&r, ladder)| {
                    acc + ladder.rungs[r].2
                });
            let Some((class, required, capacity)) = config.device.first_overflow(total) else {
                break total;
            };
            let victim = (0..bundles.len())
                .filter(|&i| rung[i] + 1 < ladders[i].rungs.len())
                .max_by_key(|&i| {
                    (
                        component(ladders[i].rungs[rung[i]].2, class),
                        usize::MAX - i,
                    )
                });
            match victim {
                Some(i) => rung[i] += 1,
                None => {
                    // Everyone is already fully folded: blame the model
                    // contributing most to the overflowing class.
                    let worst = (0..bundles.len())
                        .max_by_key(|&i| {
                            (
                                component(ladders[i].rungs[rung[i]].2, class),
                                usize::MAX - i,
                            )
                        })
                        // lint:allow(panic-in-lib): an overflowing class implies a contributing bundle
                        .expect("at least one bundle");
                    return Err(CoreError::PlanOverflow {
                        detector: worst,
                        name: names[worst].clone(),
                        resource: class,
                        required,
                        capacity,
                    });
                }
            }
        };

        let models: Vec<ModelPlan> = bundles
            .iter()
            .zip(&names)
            .zip(rung.iter().zip(&ladders))
            .map(|((bundle, name), (&r, ladder))| {
                let (goal, folding, resources, peak_fps) = ladder.rungs[r].clone();
                ModelPlan {
                    kind: bundle.kind,
                    name: name.clone(),
                    goal,
                    folding,
                    resources,
                    peak_fps,
                    demotions: r,
                }
            })
            .collect();
        let largest = models
            .iter()
            .map(|m| m.resources)
            .max_by_key(|r| r.lut)
            .unwrap_or_default();
        Ok(DeploymentPlan {
            device: config.device,
            clock_hz: config.clock_hz,
            utilization: config.device.utilization(total).max_fraction(),
            headroom: config.device.headroom_after(total, largest),
            total_resources: total,
            models,
        })
    }

    /// The slowest planned model's peak throughput — the plan-level
    /// streaming ceiling.
    pub fn min_peak_fps(&self) -> f64 {
        self.models
            .iter()
            .map(|m| m.peak_fps)
            .fold(f64::INFINITY, f64::min)
    }

    /// Compiles every bundle at its planned folding (scenario-parallel,
    /// one scoped thread per model), attaches the IPs to one board and
    /// returns the serving-ready deployment.
    ///
    /// `base` supplies the non-folding compilation parameters (FIFO
    /// depth, verification samples); the per-model name, clock and
    /// folding goal come from the plan.
    ///
    /// # Panics
    ///
    /// Panics when `bundles` is not the slice the plan was built from
    /// (length mismatch).
    ///
    /// # Errors
    ///
    /// [`CoreError::PlanMismatch`] when a same-length but different
    /// bundle set is handed in (the compiled IPs would not match the
    /// plan's folding/resource facts); compilation and SoC errors
    /// otherwise.
    pub fn deploy(
        &self,
        bundles: &[DetectorBundle],
        base: &CompileConfig,
        ecu: EcuConfig,
    ) -> Result<MultiIdsDeployment, CoreError> {
        assert_eq!(
            bundles.len(),
            self.models.len(),
            "plan was built from a different bundle set"
        );
        let jobs: Vec<(&DetectorBundle, &ModelPlan)> =
            bundles.iter().zip(self.models.iter()).collect();
        let compiled = crate::par::scoped_map(&jobs, |(bundle, model_plan)| {
            AcceleratorIp::compile(
                &bundle.model,
                CompileConfig {
                    name: model_plan.name.clone(),
                    clock_hz: self.clock_hz,
                    goal: model_plan.goal,
                    ..base.clone()
                },
            )
        });
        let mut ips = Vec::with_capacity(jobs.len());
        for (i, ip) in compiled.into_iter().enumerate() {
            let ip = ip?;
            // Identity check: the compiled artifact must realise its
            // plan entry — a different same-length bundle set would
            // yield silently mismatched hardware facts.
            let m = &self.models[i];
            if bundles[i].kind != m.kind
                || *ip.folding() != m.folding
                || ip.resources() != m.resources
            {
                return Err(CoreError::PlanMismatch {
                    detector: i,
                    name: m.name.clone(),
                });
            }
            ips.push(ip);
        }
        let deployment = MultiIdsDeployment {
            ecu: build_ecu(&ips, ecu)?,
            kinds: bundles.iter().map(|b| b.kind).collect(),
            total_resources: self.total_resources,
            utilization: self.utilization,
            headroom: self.headroom,
            plan: self.clone(),
            ips,
        };
        Ok(deployment)
    }
}

fn build_ecu(ips: &[AcceleratorIp], config: EcuConfig) -> Result<IdsEcu, CoreError> {
    let mut board = Zcu104Board::new(BoardConfig::default());
    let mut models = Vec::with_capacity(ips.len());
    for ip in ips {
        models.push(board.attach_accelerator(ip.clone())?);
    }
    Ok(IdsEcu::new(board, models, config))
}

/// A deployed multi-IDS ECU plus its plan and aggregate hardware facts.
pub struct MultiIdsDeployment {
    /// The ECU with all detectors attached.
    pub ecu: IdsEcu,
    /// Attack kind per attached accelerator index.
    pub kinds: Vec<AttackKind>,
    /// Summed PL resources.
    pub total_resources: ResourceEstimate,
    /// Peak device utilisation fraction.
    pub utilization: f64,
    /// Additional copies of the largest IP that still fit the true
    /// remaining resources.
    pub headroom: u64,
    /// The folding-budget plan this deployment realises.
    pub plan: DeploymentPlan,
    /// The compiled IPs, in bundle order.
    pub ips: Vec<AcceleratorIp>,
}

impl std::fmt::Debug for MultiIdsDeployment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiIdsDeployment")
            .field("kinds", &self.kinds)
            .field("utilization", &self.utilization)
            .finish_non_exhaustive()
    }
}

impl MultiIdsDeployment {
    /// A fresh ECU over the already-compiled IPs (new board, new clock)
    /// — the way to replay one capture under several [`SchedPolicy`]s
    /// without recompiling or fighting the monotonic board time.
    ///
    /// # Errors
    ///
    /// Propagates SoC attach errors.
    pub fn fresh_ecu(&self, config: EcuConfig) -> Result<IdsEcu, CoreError> {
        build_ecu(&self.ips, config)
    }

    /// A serving backend over this deployment for the unified harness
    /// ([`crate::serve::ServeHarness`]): every replay session gets a
    /// fresh ECU, configured from the replay's
    /// [`crate::serve::ReplayConfig::ecu`].
    pub fn serve_backend(&self) -> crate::serve::EcuBackend<'_> {
        crate::serve::EcuBackend::new(self)
    }

    /// Fresh ECUs for each policy, paired with the policy label — the
    /// per-policy ablation harness.
    ///
    /// # Errors
    ///
    /// Propagates SoC attach errors.
    pub fn policy_ecus(
        &self,
        base: EcuConfig,
        policies: &[SchedPolicy],
    ) -> Result<Vec<(SchedPolicy, IdsEcu)>, CoreError> {
        policies
            .iter()
            .map(|&policy| Ok((policy, self.fresh_ecu(EcuConfig { policy, ..base })?)))
            .collect()
    }
}

/// Compiles and deploys several detectors onto one board with default
/// planning (ZCU104) and the default scheduling policy — the
/// compatibility entry point over [`DeploymentPlan::build`] +
/// [`DeploymentPlan::deploy`].
///
/// The caller's `compile.goal` is honoured as the allocator's starting
/// rung: a `TargetFps` goal heads the fold-deeper ladder (slower
/// default rungs remain as fallback), `MinResource` plans every model
/// fully sequential, and `MaxParallel` starts from a one-cycle
/// initiation-interval budget.
///
/// # Errors
///
/// Planning, compilation and SoC errors.
pub fn deploy_multi_ids(
    bundles: &[DetectorBundle],
    compile: CompileConfig,
) -> Result<MultiIdsDeployment, CoreError> {
    let defaults = PlanConfig::default();
    let fps_ladder = match compile.goal {
        FoldingGoal::TargetFps { fps, .. } => std::iter::once(fps)
            .chain(defaults.fps_ladder.into_iter().filter(|&f| f < fps))
            .collect(),
        FoldingGoal::MinResource => Vec::new(),
        // MaxParallel ≙ a one-cycle II budget at the PL clock.
        FoldingGoal::MaxParallel => std::iter::once(compile.clock_hz as f64)
            .chain(defaults.fps_ladder)
            .collect(),
    };
    let plan = DeploymentPlan::build(
        bundles,
        &PlanConfig {
            device: defaults.device,
            clock_hz: compile.clock_hz,
            fps_ladder,
        },
    )?;
    plan.deploy(bundles, &compile, EcuConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use canids_qnn::prelude::*;

    fn tiny_model(seed: u64) -> IntegerMlp {
        QuantMlp::new(MlpConfig {
            seed,
            ..MlpConfig::default()
        })
        .unwrap()
        .export()
        .unwrap()
    }

    fn bundles(n: usize) -> Vec<DetectorBundle> {
        let kinds = [
            AttackKind::Dos,
            AttackKind::Fuzzy,
            AttackKind::GearSpoof,
            AttackKind::RpmSpoof,
        ];
        (0..n)
            .map(|i| DetectorBundle::new(kinds[i % kinds.len()], tiny_model(i as u64 + 1)))
            .collect()
    }

    #[test]
    fn dual_deployment_fits_with_headroom() {
        let deployment = deploy_multi_ids(&bundles(2), CompileConfig::default()).unwrap();
        assert_eq!(deployment.kinds.len(), 2);
        assert!(
            deployment.utilization < 0.08,
            "two IPs stay well under 8%: {}",
            deployment.utilization
        );
        assert!(deployment.headroom >= 4, "headroom {}", deployment.headroom);
        assert_eq!(deployment.ecu.models().len(), 2);
        // Latency-first: the default ladder's top rung was granted.
        assert!(deployment.plan.models.iter().all(|m| m.demotions == 0));
        assert!(deployment.plan.min_peak_fps() >= 1_000_000.0);
    }

    #[test]
    fn resources_sum_across_ips() {
        let one = deploy_multi_ids(&bundles(1), CompileConfig::default()).unwrap();
        let two = deploy_multi_ids(&bundles(2), CompileConfig::default()).unwrap();
        assert!(two.total_resources.lut > one.total_resources.lut);
    }

    #[test]
    fn plan_resources_match_compiled_ips() {
        let bs = bundles(2);
        let plan = DeploymentPlan::build(&bs, &PlanConfig::default()).unwrap();
        let deployment = plan
            .deploy(&bs, &CompileConfig::default(), EcuConfig::default())
            .unwrap();
        for (m, ip) in plan.models.iter().zip(&deployment.ips) {
            assert_eq!(m.resources, ip.resources(), "{}", m.name);
            assert_eq!(&m.folding, ip.folding(), "{}", m.name);
        }
        let summed = deployment
            .ips
            .iter()
            .fold(ResourceEstimate::default(), |acc, ip| acc + ip.resources());
        assert_eq!(summed, plan.total_resources);
    }

    #[test]
    fn duplicate_kinds_get_unique_names() {
        let bs = bundles(8);
        let plan = DeploymentPlan::build(&bs, &PlanConfig::default()).unwrap();
        let mut names: Vec<&str> = plan.models.iter().map(|m| m.name.as_str()).collect();
        assert!(names.contains(&"dos-ids"));
        assert!(names.contains(&"dos-ids-2"));
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8, "names must be unique");
    }

    #[test]
    fn allocator_folds_deeper_on_small_devices() {
        // Twenty latency-first models overflow a PYNQ-Z2 (~3k LUT each
        // against 53k); the allocator must demote some of them rather
        // than fail.
        let bs = bundles(20);
        let plan = DeploymentPlan::build(
            &bs,
            &PlanConfig {
                device: Device::PYNQ_Z2,
                ..PlanConfig::default()
            },
        )
        .unwrap();
        assert!(plan.device.first_overflow(plan.total_resources).is_none());
        let demoted = plan.models.iter().filter(|m| m.demotions > 0).count();
        assert!(demoted > 0, "PYNQ-Z2 cannot grant twenty 1M fps budgets");
        // Every model still meets classic-CAN line rate.
        assert!(plan.min_peak_fps() >= 8_300.0, "{}", plan.min_peak_fps());
    }

    #[test]
    fn overflow_names_the_offending_model() {
        let toy = Device {
            name: "toy",
            luts: 4_000,
            ffs: 8_000,
            bram36: 4,
            dsps: 8,
        };
        let err = DeploymentPlan::build(
            &bundles(3),
            &PlanConfig {
                device: toy,
                ..PlanConfig::default()
            },
        )
        .unwrap_err();
        match err {
            CoreError::PlanOverflow {
                detector,
                name,
                resource,
                required,
                capacity,
            } => {
                assert!(detector < 3);
                assert!(!name.is_empty());
                assert_eq!(resource, "LUT");
                assert!(required > capacity, "{required} !> {capacity}");
            }
            other => panic!("expected PlanOverflow, got {other:?}"),
        }
    }

    #[test]
    fn deploy_multi_ids_honours_the_callers_goal() {
        // Regression: the compatibility wrapper must not silently trade
        // a MinResource request for the latency-first ladder.
        let min = deploy_multi_ids(
            &bundles(1),
            CompileConfig {
                goal: FoldingGoal::MinResource,
                ..CompileConfig::default()
            },
        )
        .unwrap();
        let fast = deploy_multi_ids(&bundles(1), CompileConfig::default()).unwrap();
        assert!(
            min.total_resources.lut < fast.total_resources.lut,
            "MinResource deployment must be smaller: {} !< {}",
            min.total_resources.lut,
            fast.total_resources.lut
        );
        assert!(min.plan.min_peak_fps() < fast.plan.min_peak_fps());
        // A custom throughput target heads the ladder.
        let custom = deploy_multi_ids(
            &bundles(1),
            CompileConfig {
                goal: FoldingGoal::TargetFps {
                    fps: 50_000.0,
                    clock_hz: 200_000_000,
                },
                ..CompileConfig::default()
            },
        )
        .unwrap();
        assert!(custom.plan.min_peak_fps() >= 50_000.0);
        assert!(custom.total_resources.lut <= fast.total_resources.lut);
    }

    #[test]
    fn deploying_a_different_bundle_set_is_rejected() {
        let planned = bundles(2);
        let plan = DeploymentPlan::build(&planned, &PlanConfig::default()).unwrap();
        // Same length, different topology: the plan's hardware facts
        // would not describe these IPs.
        let swapped: Vec<DetectorBundle> = (0..2)
            .map(|i| {
                let mlp = QuantMlp::new(MlpConfig {
                    seed: 90 + i as u64,
                    hidden: vec![16],
                    ..MlpConfig::default()
                })
                .unwrap();
                DetectorBundle::new(AttackKind::Dos, mlp.export().unwrap())
            })
            .collect();
        let err = plan
            .deploy(&swapped, &CompileConfig::default(), EcuConfig::default())
            .unwrap_err();
        assert!(
            matches!(err, CoreError::PlanMismatch { detector: 0, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn empty_deployment_is_rejected() {
        assert!(matches!(
            DeploymentPlan::build(&[], &PlanConfig::default()),
            Err(CoreError::EmptyDeployment)
        ));
    }

    #[test]
    fn fresh_ecu_reuses_compiled_ips() {
        let deployment = deploy_multi_ids(&bundles(2), CompileConfig::default()).unwrap();
        let pairs = deployment
            .policy_ecus(
                EcuConfig::default(),
                &[SchedPolicy::Sequential, SchedPolicy::DmaBatch { batch: 8 }],
            )
            .unwrap();
        assert_eq!(pairs.len(), 2);
        for (policy, ecu) in &pairs {
            assert_eq!(ecu.config().policy, *policy);
            assert_eq!(ecu.models().len(), 2);
        }
    }
}
