//! Multi-model deployment (the paper's "multiple models can be executed
//! simultaneously for a comprehensive IDS integration").

use canids_dataflow::ip::{AcceleratorIp, CompileConfig};
use canids_dataflow::resources::{Device, ResourceEstimate};
use canids_dataset::attacks::AttackKind;
use canids_qnn::export::IntegerMlp;
use canids_soc::board::{BoardConfig, Zcu104Board};
use canids_soc::ecu::{EcuConfig, IdsEcu};

use crate::error::CoreError;

/// A named detector ready for deployment.
#[derive(Debug, Clone)]
pub struct DetectorBundle {
    /// Which attack this detector was trained for.
    pub kind: AttackKind,
    /// The streamlined network.
    pub model: IntegerMlp,
}

/// A deployed multi-IDS ECU plus its aggregate hardware facts.
pub struct MultiIdsDeployment {
    /// The ECU with all detectors attached.
    pub ecu: IdsEcu,
    /// Attack kind per attached accelerator index.
    pub kinds: Vec<AttackKind>,
    /// Summed PL resources.
    pub total_resources: ResourceEstimate,
    /// Peak device utilisation fraction.
    pub utilization: f64,
    /// Additional copies of the largest IP that would still fit.
    pub headroom: u64,
}

impl std::fmt::Debug for MultiIdsDeployment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiIdsDeployment")
            .field("kinds", &self.kinds)
            .field("utilization", &self.utilization)
            .finish_non_exhaustive()
    }
}

/// Compiles and deploys several detectors onto one board.
///
/// Compilation is independent per detector, so the IPs are built
/// concurrently on scoped threads; attachment to the board stays in
/// bundle order.
///
/// # Errors
///
/// Propagates compilation and SoC errors.
pub fn deploy_multi_ids(
    bundles: &[DetectorBundle],
    compile: CompileConfig,
) -> Result<MultiIdsDeployment, CoreError> {
    let compiled = crate::par::scoped_map(bundles, |bundle| {
        AcceleratorIp::compile(
            &bundle.model,
            CompileConfig {
                name: format!("{:?}-ids", bundle.kind).to_lowercase(),
                ..compile.clone()
            },
        )
    });

    let mut board = Zcu104Board::new(BoardConfig::default());
    let mut models = Vec::new();
    let mut kinds = Vec::new();
    let mut total = ResourceEstimate::default();
    let mut largest = ResourceEstimate::default();
    for (bundle, ip) in bundles.iter().zip(compiled) {
        let ip = ip?;
        let r = ip.resources();
        total += r;
        if r.lut > largest.lut {
            largest = r;
        }
        let idx = board.attach_accelerator(ip)?;
        models.push(idx);
        kinds.push(bundle.kind);
    }
    let utilization = Device::ZCU104.utilization(total).max_fraction();
    let remaining = ResourceEstimate {
        lut: Device::ZCU104.luts - total.lut.min(Device::ZCU104.luts),
        ff: Device::ZCU104.ffs - total.ff.min(Device::ZCU104.ffs),
        bram36: Device::ZCU104.bram36 - total.bram36.min(Device::ZCU104.bram36),
        dsp: Device::ZCU104.dsps - total.dsp.min(Device::ZCU104.dsps),
    };
    let headroom = if largest.lut == 0 {
        0
    } else {
        Device {
            name: "remaining",
            luts: remaining.lut,
            ffs: remaining.ff,
            bram36: remaining.bram36,
            dsps: remaining.dsp.max(1),
        }
        .fit_count(largest)
    };
    Ok(MultiIdsDeployment {
        ecu: IdsEcu::new(board, models, EcuConfig::default()),
        kinds,
        total_resources: total,
        utilization,
        headroom,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use canids_qnn::prelude::*;

    fn tiny_model(seed: u64) -> IntegerMlp {
        QuantMlp::new(MlpConfig {
            seed,
            ..MlpConfig::default()
        })
        .unwrap()
        .export()
        .unwrap()
    }

    #[test]
    fn dual_deployment_fits_with_headroom() {
        let bundles = vec![
            DetectorBundle {
                kind: AttackKind::Dos,
                model: tiny_model(1),
            },
            DetectorBundle {
                kind: AttackKind::Fuzzy,
                model: tiny_model(2),
            },
        ];
        let deployment = deploy_multi_ids(&bundles, CompileConfig::default()).unwrap();
        assert_eq!(deployment.kinds.len(), 2);
        assert!(
            deployment.utilization < 0.08,
            "two IPs stay well under 8%: {}",
            deployment.utilization
        );
        assert!(deployment.headroom >= 4, "headroom {}", deployment.headroom);
        assert_eq!(deployment.ecu.models().len(), 2);
    }

    #[test]
    fn resources_sum_across_ips() {
        let one = deploy_multi_ids(
            &[DetectorBundle {
                kind: AttackKind::Dos,
                model: tiny_model(3),
            }],
            CompileConfig::default(),
        )
        .unwrap();
        let two = deploy_multi_ids(
            &[
                DetectorBundle {
                    kind: AttackKind::Dos,
                    model: tiny_model(3),
                },
                DetectorBundle {
                    kind: AttackKind::Fuzzy,
                    model: tiny_model(4),
                },
            ],
            CompileConfig::default(),
        )
        .unwrap();
        assert!(two.total_resources.lut > one.total_resources.lut);
    }
}
