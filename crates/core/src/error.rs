//! Unified error type for the end-to-end pipeline.

use std::error::Error;
use std::fmt;

use canids_dataflow::DataflowError;
use canids_qnn::QnnError;
use canids_soc::SocError;

/// Any failure along the train → compile → deploy → evaluate pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Training/export failure.
    Qnn(QnnError),
    /// Hardware-compilation failure.
    Dataflow(DataflowError),
    /// SoC/driver failure.
    Soc(SocError),
    /// The generated capture contains no attack (or no normal) frames —
    /// the classifier cannot be trained or scored.
    DegenerateCapture {
        /// Attack-frame count.
        attacks: usize,
        /// Normal-frame count.
        normals: usize,
    },
    /// The folding-budget allocator could not fit every detector on the
    /// device, even with the offending model folded fully sequential.
    PlanOverflow {
        /// Index of the detector that could not be placed.
        detector: usize,
        /// Its planned IP-core name.
        name: String,
        /// The resource class that overflowed.
        resource: &'static str,
        /// Amount the whole plan requires.
        required: u64,
        /// Device capacity of that class.
        capacity: u64,
    },
    /// A deployment action needs at least one detector bundle.
    EmptyDeployment,
    /// `DeploymentPlan::deploy` was handed a bundle set different from
    /// the one the plan was built from — the compiled IPs would not
    /// match the plan's hardware facts.
    PlanMismatch {
        /// Index of the first bundle that diverges from its plan entry.
        detector: usize,
        /// The plan entry's IP-core name.
        name: String,
    },
    /// A fleet action needs at least one board.
    EmptyFleet,
    /// The cross-ECU partitioner could not place a detector on *any*
    /// board of the fleet, even with the fold-deepest ladder. Carries the
    /// closest-fit board's shortfall (the board whose rejection was
    /// smallest), so the caller sees how far the fleet is from fitting.
    /// `resource` is one of the device classes, or `"SLOTS"` when every
    /// board is at its admission-control model cap.
    FleetOverflow {
        /// Index of the detector that could not be placed.
        detector: usize,
        /// Its IP-core name (kind slug).
        name: String,
        /// Boards tried.
        boards: usize,
        /// The limiting class on the closest-fit board.
        resource: &'static str,
        /// Amount that board would need.
        required: u64,
        /// That board's capacity.
        capacity: u64,
    },
    /// An admission policy carries per-model priorities whose length does
    /// not match the fleet's detector count.
    PriorityMismatch {
        /// Detectors in the fleet.
        expected: usize,
        /// Priorities supplied.
        actual: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Qnn(e) => write!(f, "training: {e}"),
            CoreError::Dataflow(e) => write!(f, "hardware compilation: {e}"),
            CoreError::Soc(e) => write!(f, "soc: {e}"),
            CoreError::DegenerateCapture { attacks, normals } => write!(
                f,
                "degenerate capture: {attacks} attack / {normals} normal frames"
            ),
            CoreError::PlanOverflow {
                detector,
                name,
                resource,
                required,
                capacity,
            } => write!(
                f,
                "deployment plan does not fit: detector {detector} ({name}) leaves the plan \
                 needing {required} {resource} of {capacity} even fully folded"
            ),
            CoreError::EmptyDeployment => write!(f, "deployment needs at least one detector"),
            CoreError::PlanMismatch { detector, name } => write!(
                f,
                "bundle {detector} does not match plan entry {name}; rebuild the plan for this \
                 bundle set"
            ),
            CoreError::EmptyFleet => write!(f, "fleet needs at least one board"),
            CoreError::FleetOverflow {
                detector,
                name,
                boards,
                resource,
                required,
                capacity,
            } => write!(
                f,
                "fleet cannot place detector {detector} ({name}) on any of {boards} board(s); \
                 closest fit still needs {required} {resource} of {capacity}"
            ),
            CoreError::PriorityMismatch { expected, actual } => write!(
                f,
                "admission policy carries {actual} priorities for {expected} detectors"
            ),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Qnn(e) => Some(e),
            CoreError::Dataflow(e) => Some(e),
            CoreError::Soc(e) => Some(e),
            CoreError::DegenerateCapture { .. }
            | CoreError::PlanOverflow { .. }
            | CoreError::EmptyDeployment
            | CoreError::PlanMismatch { .. }
            | CoreError::EmptyFleet
            | CoreError::FleetOverflow { .. }
            | CoreError::PriorityMismatch { .. } => None,
        }
    }
}

impl From<QnnError> for CoreError {
    fn from(e: QnnError) -> Self {
        CoreError::Qnn(e)
    }
}

impl From<DataflowError> for CoreError {
    fn from(e: DataflowError) -> Self {
        CoreError::Dataflow(e)
    }
}

impl From<SocError> for CoreError {
    fn from(e: SocError) -> Self {
        CoreError::Soc(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources() {
        let e: CoreError = QnnError::EmptyDataset.into();
        assert!(e.to_string().contains("training"));
        assert!(e.source().is_some());
        let d: CoreError = DataflowError::EmptyNetwork.into();
        assert!(d.to_string().contains("compilation"));
        let s: CoreError = SocError::DeviceBusy.into();
        assert!(s.to_string().contains("soc"));
        assert!(CoreError::DegenerateCapture {
            attacks: 0,
            normals: 10
        }
        .source()
        .is_none());
    }
}
