//! The cross-ECU fleet subsystem: one detector fleet sharded across
//! several heterogeneous boards, one level above [`crate::deploy`].
//!
//! The single-board engine answers "how many detectors fit on *this*
//! device"; a vehicle has more detectors than any one ECU should carry,
//! and its sibling architecture work argues for the IDS as a
//! distributed, gateway-coupled function. This module is that layer:
//!
//! 1. **Partitioning** — [`FleetPlan::build`] assigns N
//!    [`DetectorBundle`]s to M boards ([`BoardSpec`]: device, clock,
//!    optional admission-control model cap), keeping per-board
//!    utilisation balanced and reusing [`DeploymentPlan::build`] per
//!    shard so every shard inherits the folding-budget ladder and its
//!    fit proof. When no board can take a model even fold-deepest,
//!    [`CoreError::FleetOverflow`] names it and the closest-fit board's
//!    shortfall.
//! 2. **Compilation** — [`FleetPlan::deploy`] compiles every shard
//!    through the single-board engine and keeps the compiled IPs
//!    board-side, so replays can build fresh ECUs per scenario (the
//!    simulated board clock is monotonic).
//! 3. **Serving** — through the unified serving API: wrap a compiled
//!    fleet in [`FleetDeployment::serve_backend`] and replay it with
//!    [`crate::serve::ServeHarness`]. Frames reach each shard through
//!    the [`canids_can::gateway::SegmentForwarder`] store-and-forward
//!    model (real forwarding delay + far-segment serialisation, not a
//!    free broadcast), and a fleet-level [`AdmissionPolicy`] governs
//!    sustained overload: keep today's FIFO drops, shed by static or
//!    *measured* model value, or migrate to a warm standby. Frame
//!    transport is selectable per replay
//!    ([`crate::serve::FleetTransport`]): the analytic forwarder, or
//!    the event-driven [`crate::net`] runtime with finite gateway
//!    buffers and fault injection.

use canids_dataflow::ip::{AcceleratorIp, CompileConfig};
use canids_dataflow::resources::{Device, ResourceEstimate};
use canids_dataset::attacks::AttackKind;
use canids_soc::board::{BoardConfig, Zcu104Board};
use canids_soc::ecu::{EcuConfig, IdsEcu};

use crate::deploy::{DeploymentPlan, DetectorBundle, PlanConfig};
use crate::error::CoreError;
use crate::serve::FleetBackend;

pub use crate::serve::{AdmissionPolicy, FleetAction, FleetEvent, OverloadThresholds};

/// One board of the fleet: which device it is, the PL clock its shard is
/// planned at, and an instance name for reports.
///
/// The device and clock drive *planning and compilation* (resource fit,
/// folding budgets, IP latency facts). The serving runtime models every
/// board with the ZCU104 SoC (A53/Linux CPU cost model and power
/// rails) — the only platform the `soc` crate currently simulates — so
/// per-board power/energy figures are ZCU104-class estimates even for
/// Ultra96/PYNQ-Z2 shards.
#[derive(Debug, Clone)]
pub struct BoardSpec {
    /// Instance name (e.g. `"front-zcu104"`), unique within the fleet by
    /// convention.
    pub name: String,
    /// The FPGA device the shard must fit.
    pub device: Device,
    /// PL clock the shard is planned and compiled at.
    pub clock_hz: u64,
}

impl BoardSpec {
    /// A ZCU104-class board (the paper's target ECU) at 200 MHz.
    pub fn zcu104(name: &str) -> Self {
        BoardSpec {
            name: name.to_owned(),
            device: Device::ZCU104,
            clock_hz: 200_000_000,
        }
    }

    /// An Ultra96-class board at 150 MHz.
    pub fn ultra96(name: &str) -> Self {
        BoardSpec {
            name: name.to_owned(),
            device: Device::ULTRA96,
            clock_hz: 150_000_000,
        }
    }

    /// A PYNQ-Z2-class board at 100 MHz (the group's earlier hybrid
    /// baseline).
    pub fn pynq_z2(name: &str) -> Self {
        BoardSpec {
            name: name.to_owned(),
            device: Device::PYNQ_Z2,
            clock_hz: 100_000_000,
        }
    }
}

/// Fleet partitioning parameters.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// The boards available to the fleet, in stable index order.
    pub boards: Vec<BoardSpec>,
    /// Per-model throughput-target ladder handed to every shard's
    /// folding-budget allocator (see [`PlanConfig::fps_ladder`]).
    pub fps_ladder: Vec<f64>,
    /// Admission control: at most this many models per board, bounding
    /// the per-board *service* load independently of the resource fit (a
    /// board can hold dozens of folded IPs it cannot serve at line rate
    /// under a per-message integration).
    pub max_models_per_board: Option<usize>,
}

impl FleetConfig {
    /// A fleet over `boards` with the default ladder and no model cap.
    pub fn new(boards: Vec<BoardSpec>) -> Self {
        FleetConfig {
            boards,
            fps_ladder: PlanConfig::default().fps_ladder,
            max_models_per_board: None,
        }
    }

    /// Sets the admission-control model cap (builder style).
    pub fn with_model_cap(mut self, cap: usize) -> Self {
        self.max_models_per_board = Some(cap);
        self
    }
}

fn shard_plan_config(spec: &BoardSpec, ladder: &[f64]) -> PlanConfig {
    PlanConfig {
        device: spec.device,
        clock_hz: spec.clock_hz,
        fps_ladder: ladder.to_vec(),
    }
}

/// One board's share of the fleet plan.
#[derive(Debug, Clone)]
pub struct FleetShard {
    /// The board this shard targets.
    pub spec: BoardSpec,
    /// Fleet-wide bundle indices assigned here, in assignment order.
    pub members: Vec<usize>,
    /// The shard's single-board plan (`None` for a spare board with no
    /// models — spare capacity is a legitimate migration target).
    pub plan: Option<DeploymentPlan>,
}

impl FleetShard {
    /// Summed planned resources of this shard (zero when spare).
    pub fn resources(&self) -> ResourceEstimate {
        self.plan
            .as_ref()
            .map(|p| p.total_resources)
            .unwrap_or_default()
    }

    /// Peak device utilisation of this shard (zero when spare).
    pub fn utilization(&self) -> f64 {
        self.plan.as_ref().map_or(0.0, |p| p.utilization)
    }
}

/// A fitted fleet plan: every bundle placed on exactly one board, every
/// shard proven to fit its device by the single-board allocator.
#[derive(Debug, Clone)]
pub struct FleetPlan {
    /// Per-board shards, index-aligned with the config's board list.
    pub shards: Vec<FleetShard>,
    /// Board index per bundle, in bundle order.
    pub assignment: Vec<usize>,
}

impl FleetPlan {
    /// Partitions `bundles` across `config.boards`.
    ///
    /// Greedy, capacity-normalised: each bundle goes to the board with
    /// the lowest current peak utilisation that (a) has a free admission
    /// slot and (b) still yields a fitting [`DeploymentPlan`] with the
    /// bundle added — so a small PYNQ-Z2 saturates after a couple of
    /// models while a ZCU104 keeps absorbing, without hand-tuned
    /// weights. Re-planning the whole shard per placement keeps the
    /// fold-deeper ladder in play: a board may accept one more model by
    /// demoting an existing one.
    ///
    /// # Errors
    ///
    /// [`CoreError::EmptyDeployment`] without bundles,
    /// [`CoreError::EmptyFleet`] without boards,
    /// [`CoreError::FleetOverflow`] when a bundle fits no board (the
    /// closest-fit board's shortfall is reported; `resource == "SLOTS"`
    /// when every board is at the admission cap); lowering errors
    /// otherwise.
    pub fn build(bundles: &[DetectorBundle], config: &FleetConfig) -> Result<Self, CoreError> {
        if bundles.is_empty() {
            return Err(CoreError::EmptyDeployment);
        }
        if config.boards.is_empty() {
            return Err(CoreError::EmptyFleet);
        }
        let m = config.boards.len();
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); m];
        let mut plans: Vec<Option<DeploymentPlan>> = vec![None; m];
        let mut assignment = vec![0usize; bundles.len()];

        for (i, bundle) in bundles.iter().enumerate() {
            let mut order: Vec<usize> = (0..m).collect();
            order.sort_by(|&a, &b| {
                let ua = plans[a].as_ref().map_or(0.0, |p| p.utilization);
                let ub = plans[b].as_ref().map_or(0.0, |p| p.utilization);
                ua.total_cmp(&ub).then(a.cmp(&b))
            });

            // Closest rejection across boards, for the typed overflow —
            // ranked by *relative* shortfall (required/capacity), since
            // absolute gaps are incomparable across resource classes
            // (2 BRAM36 short is much further from fitting than 500 LUTs
            // short).
            let mut best_reject: Option<(f64, &'static str, u64, u64)> = None;
            let mut placed = false;
            for &b in &order {
                if let Some(cap) = config.max_models_per_board {
                    if members[b].len() >= cap {
                        continue;
                    }
                }
                // Re-planning the whole shard per trial clones the
                // member models (IntegerMlp weights) — O(N²·M) clones
                // over a build. Fleets are tens of models on a handful
                // of boards, and the clones are a few KB each; keeping
                // the single-board allocator as the one source of fit
                // truth is worth far more than the copies.
                let trial: Vec<DetectorBundle> = members[b]
                    .iter()
                    .map(|&j| bundles[j].clone())
                    .chain(std::iter::once(bundle.clone()))
                    .collect();
                match DeploymentPlan::build(
                    &trial,
                    &shard_plan_config(&config.boards[b], &config.fps_ladder),
                ) {
                    Ok(plan) => {
                        members[b].push(i);
                        plans[b] = Some(plan);
                        assignment[i] = b;
                        placed = true;
                        break;
                    }
                    Err(CoreError::PlanOverflow {
                        resource,
                        required,
                        capacity,
                        ..
                    }) => {
                        let over = required as f64 / capacity.max(1) as f64;
                        if best_reject.is_none_or(|(o, ..)| over < o) {
                            best_reject = Some((over, resource, required, capacity));
                        }
                    }
                    Err(e) => return Err(e),
                }
            }
            if !placed {
                let (resource, required, capacity) = match best_reject {
                    Some((_, r, req, cap)) => (r, req, cap),
                    // Every board skipped at the admission cap.
                    None => {
                        let cap = config.max_models_per_board.unwrap_or(0) as u64;
                        ("SLOTS", cap + 1, cap)
                    }
                };
                return Err(CoreError::FleetOverflow {
                    detector: i,
                    name: format!("{}-ids", bundle.kind.slug()),
                    boards: m,
                    resource,
                    required,
                    capacity,
                });
            }
        }

        let shards = config
            .boards
            .iter()
            .zip(members)
            .zip(plans)
            .map(|((spec, members), plan)| FleetShard {
                spec: spec.clone(),
                members,
                plan,
            })
            .collect();
        Ok(FleetPlan { shards, assignment })
    }

    /// Detectors placed.
    pub fn models(&self) -> usize {
        self.assignment.len()
    }

    /// Boards carrying at least one model.
    pub fn occupied_boards(&self) -> usize {
        self.shards.iter().filter(|s| !s.members.is_empty()).count()
    }

    /// Worst per-board peak utilisation across the fleet.
    pub fn max_utilization(&self) -> f64 {
        self.shards
            .iter()
            .map(FleetShard::utilization)
            .fold(0.0, f64::max)
    }

    /// Compiles every shard through the single-board engine
    /// (model-parallel within each shard) and returns the serving-ready
    /// fleet.
    ///
    /// # Panics
    ///
    /// Panics when `bundles` is not the slice the plan was built from
    /// (length mismatch).
    ///
    /// # Errors
    ///
    /// Per-shard compilation and identity errors (see
    /// [`DeploymentPlan::deploy`]).
    pub fn deploy(
        &self,
        bundles: &[DetectorBundle],
        base: &CompileConfig,
    ) -> Result<FleetDeployment, CoreError> {
        assert_eq!(
            bundles.len(),
            self.assignment.len(),
            "fleet plan was built from a different bundle set"
        );
        let mut shards = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            let sub: Vec<DetectorBundle> =
                shard.members.iter().map(|&i| bundles[i].clone()).collect();
            let (ips, kinds) = match &shard.plan {
                Some(plan) => {
                    let d = plan.deploy(&sub, base, EcuConfig::default())?;
                    (d.ips, d.kinds)
                }
                None => (Vec::new(), Vec::new()),
            };
            shards.push(ShardDeployment {
                spec: shard.spec.clone(),
                members: shard.members.clone(),
                plan: shard.plan.clone(),
                kinds,
                ips,
            });
        }
        let mut locations = vec![
            Slot {
                shard: usize::MAX,
                local: usize::MAX,
            };
            bundles.len()
        ];
        for (s, shard) in shards.iter().enumerate() {
            for (local, &fleet_idx) in shard.members.iter().enumerate() {
                locations[fleet_idx] = Slot { shard: s, local };
            }
        }
        Ok(FleetDeployment { shards, locations })
    }
}

/// One board's compiled share of the fleet.
#[derive(Debug, Clone)]
pub struct ShardDeployment {
    /// The board this shard runs on.
    pub spec: BoardSpec,
    /// Fleet-wide bundle indices, aligned with `ips`.
    pub members: Vec<usize>,
    /// The shard's plan (`None` for a spare board).
    pub plan: Option<DeploymentPlan>,
    /// Attack kind per compiled IP.
    pub kinds: Vec<AttackKind>,
    /// The compiled IPs, in member order.
    pub ips: Vec<AcceleratorIp>,
}

/// Where a model runs: board index + accelerator index on that board.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slot {
    /// Shard (board) index.
    pub shard: usize,
    /// Accelerator index on that board's ECU.
    pub local: usize,
}

/// A compiled fleet: per-shard IPs plus the model→slot map. ECUs are
/// built fresh per replay (the simulated board clock is monotonic), so
/// one deployment serves any number of scenario/policy replays — in
/// parallel, since only plain compiled artifacts are shared.
#[derive(Debug, Clone)]
pub struct FleetDeployment {
    /// Per-board shards, index-aligned with the plan's board list.
    pub shards: Vec<ShardDeployment>,
    /// Home slot per fleet model, in bundle order.
    pub locations: Vec<Slot>,
}

impl FleetDeployment {
    /// Total detectors across the fleet.
    pub fn models(&self) -> usize {
        self.locations.len()
    }

    /// A serving backend over this fleet for the unified harness
    /// ([`crate::serve::ServeHarness`]): every replay session builds
    /// fresh per-shard
    /// ECUs, so one deployment supports any number of (possibly
    /// concurrent) replays.
    pub fn serve_backend(&self) -> FleetBackend<'_> {
        FleetBackend::new(self)
    }
}

/// Builds a fresh serving ECU for one shard. The runtime board is the
/// ZCU104 SoC model for every shard (see [`BoardSpec`]); the per-board
/// heterogeneity lives in the planned resources and compiled IP timing.
pub(crate) fn build_shard_ecu(
    shard: &ShardDeployment,
    standbys: &[AcceleratorIp],
    config: EcuConfig,
) -> Result<IdsEcu, CoreError> {
    let mut board = Zcu104Board::new(BoardConfig::default());
    let mut models = Vec::with_capacity(shard.ips.len() + standbys.len());
    for ip in shard.ips.iter().chain(standbys) {
        models.push(board.attach_accelerator(ip.clone())?);
    }
    Ok(IdsEcu::new(board, models, config))
}

/// Pre-provisions warm standby copies for [`AdmissionPolicy::Rebalance`]:
/// each model gets at most one standby, on the board (≠ home) whose
/// *true* resource remainder best absorbs the IP. Models that fit
/// nowhere simply have no standby (migration falls back to shedding).
pub(crate) fn place_standbys(
    deployment: &FleetDeployment,
    priorities: &[u32],
) -> (Vec<Vec<AcceleratorIp>>, Vec<Option<Slot>>) {
    let m = deployment.shards.len();
    let mut extra_ips: Vec<Vec<AcceleratorIp>> = vec![Vec::new(); m];
    let mut extra_res: Vec<ResourceEstimate> = vec![ResourceEstimate::default(); m];
    let mut standby: Vec<Option<Slot>> = vec![None; deployment.locations.len()];

    // Lowest-priority models migrate first, so they get standbys first.
    let mut order: Vec<usize> = (0..deployment.locations.len()).collect();
    order.sort_by_key(|&i| (priorities[i], std::cmp::Reverse(i)));
    for model in order {
        let home = deployment.locations[model];
        let ip = &deployment.shards[home.shard].ips[home.local];
        let need = ip.resources();
        let mut best: Option<(f64, usize)> = None;
        for (b, shard) in deployment.shards.iter().enumerate() {
            if b == home.shard {
                continue;
            }
            let used = shard
                .plan
                .as_ref()
                .map(|p| p.total_resources)
                .unwrap_or_default()
                + extra_res[b]
                + need;
            if shard.spec.device.first_overflow(used).is_some() {
                continue;
            }
            let frac = shard.spec.device.utilization(used).max_fraction();
            if best.is_none_or(|(f, _)| frac < f) {
                best = Some((frac, b));
            }
        }
        if let Some((_, b)) = best {
            let local = deployment.shards[b].ips.len() + extra_ips[b].len();
            extra_ips[b].push(ip.clone());
            extra_res[b] += need;
            standby[model] = Some(Slot { shard: b, local });
        }
    }
    (extra_ips, standby)
}

#[cfg(test)]
mod tests {
    use super::*;
    use canids_can::frame::{CanFrame, CanId};
    use canids_dataset::generator::{DatasetBuilder, TrafficConfig};
    use canids_dataset::record::{Label, LabeledFrame};
    use canids_qnn::prelude::*;

    use canids_can::time::SimTime;
    use canids_dataset::generator::Dataset;
    use canids_soc::ecu::SchedPolicy;

    use crate::serve::{
        CaptureSource, Pacing, ReplayConfig, ServeHarness, ServeReport, ServeScenario,
    };

    fn tiny_model(seed: u64) -> IntegerMlp {
        QuantMlp::new(MlpConfig {
            seed,
            ..MlpConfig::default()
        })
        .unwrap()
        .export()
        .unwrap()
    }

    fn bundles(n: usize) -> Vec<DetectorBundle> {
        let kinds = [
            AttackKind::Dos,
            AttackKind::Fuzzy,
            AttackKind::GearSpoof,
            AttackKind::RpmSpoof,
        ];
        (0..n)
            .map(|i| DetectorBundle::new(kinds[i % kinds.len()], tiny_model(i as u64 + 1)))
            .collect()
    }

    fn hetero_fleet() -> FleetConfig {
        FleetConfig::new(vec![
            BoardSpec::zcu104("zcu-a"),
            BoardSpec::ultra96("u96-a"),
            BoardSpec::pynq_z2("pynq-a"),
        ])
    }

    /// A capture with explicit pacing: `burst` frames every
    /// `burst_gap_us`, then `quiet` frames every `quiet_gap_us`.
    fn two_phase_capture(
        burst: usize,
        burst_gap_us: u64,
        quiet: usize,
        quiet_gap_us: u64,
    ) -> Dataset {
        let mut records = Vec::with_capacity(burst + quiet);
        let mut t = SimTime::ZERO;
        for i in 0..burst + quiet {
            let gap = if i < burst {
                burst_gap_us
            } else {
                quiet_gap_us
            };
            t += SimTime::from_micros(gap);
            let frame =
                CanFrame::new(CanId::standard(0x316).unwrap(), &[i.to_le_bytes()[0]; 8]).unwrap();
            records.push(LabeledFrame::new(t, frame, Label::Normal));
        }
        Dataset::from_records(records)
    }

    #[test]
    fn plan_places_every_model_and_every_shard_fits() {
        let bs = bundles(6);
        let plan = FleetPlan::build(&bs, &hetero_fleet()).unwrap();
        assert_eq!(plan.models(), 6);
        assert_eq!(plan.shards.len(), 3);
        let mut placed: Vec<usize> = plan
            .shards
            .iter()
            .flat_map(|s| s.members.iter().copied())
            .collect();
        placed.sort_unstable();
        assert_eq!(placed, (0..6).collect::<Vec<_>>(), "exact partition");
        for shard in &plan.shards {
            if let Some(p) = &shard.plan {
                assert!(
                    shard
                        .spec
                        .device
                        .first_overflow(p.total_resources)
                        .is_none(),
                    "{} overflows",
                    shard.spec.name
                );
                assert_eq!(p.models.len(), shard.members.len());
            } else {
                assert!(shard.members.is_empty());
            }
        }
        // Capacity-normalised balance: the big ZCU104 carries at least as
        // many models as the small PYNQ-Z2.
        assert!(plan.shards[0].members.len() >= plan.shards[2].members.len());
        assert!(plan.max_utilization() > 0.0);
    }

    #[test]
    fn model_cap_overflows_with_slots() {
        let bs = bundles(5);
        let config = FleetConfig::new(vec![BoardSpec::zcu104("a"), BoardSpec::zcu104("b")])
            .with_model_cap(2);
        let err = FleetPlan::build(&bs, &config).unwrap_err();
        match err {
            CoreError::FleetOverflow {
                detector,
                boards,
                resource,
                required,
                capacity,
                ..
            } => {
                assert_eq!(detector, 4, "fifth model finds both boards capped");
                assert_eq!(boards, 2);
                assert_eq!(resource, "SLOTS");
                assert!(required > capacity);
            }
            other => panic!("expected FleetOverflow, got {other:?}"),
        }
        // Four models fit exactly, two per board.
        let plan = FleetPlan::build(&bundles(4), &config).unwrap();
        assert!(plan.shards.iter().all(|s| s.members.len() == 2));
    }

    #[test]
    fn resource_overflow_names_closest_fit_shortfall() {
        let toy = Device {
            name: "toy",
            luts: 4_000,
            ffs: 8_000,
            bram36: 4,
            dsps: 8,
        };
        let boards = vec![
            BoardSpec {
                name: "toy-a".to_owned(),
                device: toy,
                clock_hz: 100_000_000,
            },
            BoardSpec {
                name: "toy-b".to_owned(),
                device: toy,
                clock_hz: 100_000_000,
            },
        ];
        // One model per toy board fits (≈99 % LUT); the third fits
        // neither, even fold-deepest.
        let err = FleetPlan::build(&bundles(3), &FleetConfig::new(boards)).unwrap_err();
        match err {
            CoreError::FleetOverflow {
                detector,
                resource,
                required,
                capacity,
                ..
            } => {
                assert_eq!(detector, 2);
                assert_ne!(resource, "SLOTS");
                assert!(required > capacity, "{required} !> {capacity}");
            }
            other => panic!("expected FleetOverflow, got {other:?}"),
        }
    }

    #[test]
    fn spare_boards_stay_spare() {
        let plan = FleetPlan::build(
            &bundles(1),
            &FleetConfig::new(vec![BoardSpec::zcu104("a"), BoardSpec::zcu104("b")]),
        )
        .unwrap();
        assert_eq!(plan.shards[0].members, vec![0]);
        assert!(plan.shards[1].members.is_empty());
        assert!(plan.shards[1].plan.is_none());
        assert_eq!(plan.shards[1].resources(), ResourceEstimate::default());
        assert_eq!(plan.occupied_boards(), 1);
    }

    #[test]
    fn empty_inputs_are_rejected() {
        assert!(matches!(
            FleetPlan::build(&[], &hetero_fleet()),
            Err(CoreError::EmptyDeployment)
        ));
        assert!(matches!(
            FleetPlan::build(&bundles(1), &FleetConfig::new(Vec::new())),
            Err(CoreError::EmptyFleet)
        ));
    }

    #[test]
    fn priorities_must_cover_every_model() {
        let bs = bundles(2);
        let plan = FleetPlan::build(&bs, &hetero_fleet()).unwrap();
        let deployment = plan.deploy(&bs, &CompileConfig::default()).unwrap();
        let capture = two_phase_capture(5, 500, 0, 0);
        let err = ServeHarness::new(deployment.serve_backend())
            .replay(
                &capture,
                &ReplayConfig::default().with_admission(AdmissionPolicy::ShedLowestValue {
                    priorities: vec![1],
                }),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            CoreError::PriorityMismatch {
                expected: 2,
                actual: 1
            }
        ));
    }

    #[test]
    fn fleet_replay_accounts_every_frame_per_board() {
        let bs = bundles(3);
        let plan = FleetPlan::build(&bs, &hetero_fleet()).unwrap();
        let deployment = plan.deploy(&bs, &CompileConfig::default()).unwrap();
        let capture = DatasetBuilder::new(TrafficConfig {
            duration: SimTime::from_millis(120),
            seed: 0xF1EE7,
            ..TrafficConfig::default()
        })
        .build();
        let config = ReplayConfig::default().with_policy(SchedPolicy::DmaBatch { batch: 32 });
        let report = ServeHarness::new(deployment.serve_backend())
            .replay(&capture, &config)
            .unwrap();
        assert_eq!(report.offered, capture.len());
        assert_eq!(report.boards.len(), 3);
        assert_eq!(report.dropped, 0, "DMA batch absorbs 1 Mb/s per shard");
        assert_eq!(report.fully_covered, report.offered);
        assert_eq!(report.verdicts.len(), report.offered);
        assert!(report.keeps_up());
        assert!(report.events.is_empty(), "DropFrames never acts");
        for b in &report.boards {
            assert_eq!(b.offered, report.offered);
            assert_eq!(b.serviced + b.dropped as usize, b.offered);
            assert!(b.energy.expect("fleet boards meter energy").mean_power_w > 0.0);
            assert!(b.latency.p50 <= b.latency.p99);
        }
        // Gateway coupling is not free: every fleet verdict pays at least
        // the store-and-forward delay plus the far-segment wire time.
        assert!(
            report.latency.p50 > config.gateway_delay,
            "p50 {} must exceed the forwarding floor",
            report.latency.p50
        );
        assert!(report.latency.p99 <= report.latency.max);
        assert!(report.offered_fps > 1_000.0, "saturated pacing");
    }

    #[test]
    fn fleet_telemetry_traces_gateway_hops_and_admission_events() {
        use crate::telemetry::{Counter, Stage, TelemetryConfig};

        // Gateway hops: every offered frame crosses the backbone ->
        // board gateway once per replay, stamped on the virtual clock.
        let bs = bundles(3);
        let plan = FleetPlan::build(&bs, &hetero_fleet()).unwrap();
        let deployment = plan.deploy(&bs, &CompileConfig::default()).unwrap();
        let capture = DatasetBuilder::new(TrafficConfig {
            duration: SimTime::from_millis(120),
            seed: 0xF1EE7,
            ..TrafficConfig::default()
        })
        .build();
        let config = ReplayConfig::default()
            .with_policy(SchedPolicy::DmaBatch { batch: 32 })
            .with_telemetry(TelemetryConfig::default());
        let report = ServeHarness::new(deployment.serve_backend())
            .replay(&capture, &config)
            .unwrap();
        let t = report.telemetry.as_ref().unwrap();
        let hops = t.stage_stats(Stage::GatewayHop);
        assert_eq!(
            hops.count as usize,
            capture.len() * report.boards.len(),
            "one hop span per frame per board shard"
        );
        assert!(hops.mean_ns > 0.0, "forwarding is never free");

        // Admission decisions: the shed/readmit cycle lands in the
        // counters and as zero-width spans at the decision instants.
        let bs2 = bundles(2);
        let plan2 =
            FleetPlan::build(&bs2, &FleetConfig::new(vec![BoardSpec::zcu104("solo")])).unwrap();
        let deployment2 = plan2.deploy(&bs2, &CompileConfig::default()).unwrap();
        let shed_capture = two_phase_capture(300, 150, 200, 1_000);
        let shed_config = ReplayConfig {
            pacing: Pacing::AsRecorded,
            admission: AdmissionPolicy::ShedLowestValue {
                priorities: vec![5, 1],
            },
            ecu: EcuConfig {
                policy: SchedPolicy::Sequential,
                ..EcuConfig::default()
            },
            ..ReplayConfig::default()
        }
        .with_telemetry(TelemetryConfig::default());
        let shed_report = ServeHarness::new(deployment2.serve_backend())
            .replay(&shed_capture, &shed_config)
            .unwrap();
        let st = shed_report.telemetry.as_ref().unwrap();
        assert_eq!(st.metrics.counter(Counter::AdmissionShed), 1);
        assert_eq!(st.metrics.counter(Counter::AdmissionReadmit), 1);
        let admission_spans: Vec<_> = st
            .spans
            .iter()
            .filter(|s| s.stage == Stage::Admission)
            .collect();
        assert_eq!(admission_spans.len(), 2);
        let event_times: Vec<SimTime> = shed_report.events.iter().map(|e| e.time).collect();
        for s in &admission_spans {
            assert_eq!(s.start, s.end, "admission spans are instants");
            assert!(event_times.contains(&s.start), "span matches an event");
        }
    }

    #[test]
    fn shed_then_readmit_when_load_subsides() {
        // One ZCU104, two models, per-message sequential serving: the
        // 150 us burst overloads the 2-model service (~240 us/frame) but
        // is sustainable with one (~120 us/frame); the quiet tail lets
        // the shard re-admit.
        let bs = bundles(2);
        let plan =
            FleetPlan::build(&bs, &FleetConfig::new(vec![BoardSpec::zcu104("solo")])).unwrap();
        let deployment = plan.deploy(&bs, &CompileConfig::default()).unwrap();
        let capture = two_phase_capture(300, 150, 200, 1_000);
        let config = ReplayConfig {
            pacing: Pacing::AsRecorded,
            admission: AdmissionPolicy::ShedLowestValue {
                priorities: vec![5, 1],
            },
            ecu: EcuConfig {
                policy: SchedPolicy::Sequential,
                ..EcuConfig::default()
            },
            ..ReplayConfig::default()
        };
        let report = ServeHarness::new(deployment.serve_backend())
            .replay(&capture, &config)
            .unwrap();
        assert_eq!(report.dropped, 0, "shedding must prevent FIFO drops");
        let sheds: Vec<&FleetEvent> = report
            .events
            .iter()
            .filter(|e| e.action == FleetAction::Shed)
            .collect();
        let readmits: Vec<&FleetEvent> = report
            .events
            .iter()
            .filter(|e| e.action == FleetAction::Readmit)
            .collect();
        assert_eq!(
            sheds.len(),
            1,
            "one shed rides out the burst: {:?}",
            report.events
        );
        assert_eq!(
            readmits.len(),
            1,
            "quiet tail re-admits: {:?}",
            report.events
        );
        assert_eq!(sheds[0].model, 1, "the lowest-priority model sheds");
        assert_eq!(readmits[0].model, 1);
        assert!(sheds[0].time < readmits[0].time);
        assert_eq!(report.verdicts.len(), report.offered);
    }

    #[test]
    fn rebalance_migrates_to_the_spare_board() {
        // Two boards, both models homed on the first; the second is
        // spare. Under the same overload the rebalancer moves the
        // lowest-priority model to the spare board's warm standby instead
        // of shedding it.
        let bs = bundles(2);
        let plan = FleetPlan::build(
            &bs,
            &FleetConfig::new(vec![BoardSpec::zcu104("busy"), BoardSpec::zcu104("spare")])
                .with_model_cap(2),
        )
        .unwrap();
        // The greedy partitioner spreads 2 models over 2 empty boards, so
        // force co-location through a single-board plan first.
        let colocated =
            FleetPlan::build(&bs, &FleetConfig::new(vec![BoardSpec::zcu104("busy")])).unwrap();
        let mut shards = colocated.shards;
        shards.push(FleetShard {
            spec: BoardSpec::zcu104("spare"),
            members: Vec::new(),
            plan: None,
        });
        let forced = FleetPlan {
            shards,
            assignment: colocated.assignment,
        };
        drop(plan);
        let deployment = forced.deploy(&bs, &CompileConfig::default()).unwrap();
        assert_eq!(deployment.shards[0].ips.len(), 2);
        assert!(deployment.shards[1].ips.is_empty());

        let capture = two_phase_capture(300, 150, 100, 1_000);
        let config = ReplayConfig {
            pacing: Pacing::AsRecorded,
            admission: AdmissionPolicy::Rebalance {
                priorities: vec![5, 1],
            },
            ecu: EcuConfig {
                policy: SchedPolicy::Sequential,
                ..EcuConfig::default()
            },
            ..ReplayConfig::default()
        };
        let report = ServeHarness::new(deployment.serve_backend())
            .replay(&capture, &config)
            .unwrap();
        assert_eq!(report.dropped, 0, "migration must prevent FIFO drops");
        let migrations: Vec<&FleetEvent> = report
            .events
            .iter()
            .filter(|e| matches!(e.action, FleetAction::Migrate { .. }))
            .collect();
        assert_eq!(
            migrations.len(),
            1,
            "one migration settles the fleet: {:?}",
            report.events
        );
        assert_eq!(migrations[0].model, 1, "the lowest-priority model moves");
        assert_eq!(migrations[0].board, 0);
        assert!(matches!(
            migrations[0].action,
            FleetAction::Migrate { to: 1 }
        ));
        assert_eq!(report.shed_count(), 0, "a fitting standby means no shed");
    }

    #[test]
    fn external_epoch_timestamps_and_duplicates_are_accounted_per_frame() {
        // External HCRL captures carry epoch-seconds timestamps and can
        // repeat a timestamp at microsecond precision: per-frame
        // accounting must stay keyed on the frame, and the offered load
        // must be computed over the capture's span, not absolute time.
        let bs = bundles(1);
        let plan =
            FleetPlan::build(&bs, &FleetConfig::new(vec![BoardSpec::zcu104("solo")])).unwrap();
        let deployment = plan.deploy(&bs, &CompileConfig::default()).unwrap();
        let epoch = SimTime::from_secs_f64(1_478_198_376.389_427);
        let frame = CanFrame::new(CanId::standard(0x316).unwrap(), &[1u8; 8]).unwrap();
        let records: Vec<LabeledFrame> = [0u64, 1_000, 1_000, 2_000]
            .iter()
            .map(|&us| LabeledFrame::new(epoch + SimTime::from_micros(us), frame, Label::Normal))
            .collect();
        let capture = Dataset::from_records(records);
        let report = ServeHarness::new(deployment.serve_backend())
            .replay(
                &capture,
                &ReplayConfig::default().with_pacing(Pacing::AsRecorded),
            )
            .unwrap();
        assert_eq!(report.offered, 4);
        assert_eq!(report.dropped, 0);
        // The two equal-timestamp frames stay separate entries.
        assert_eq!(report.verdicts.len(), 4);
        assert_eq!(report.fully_covered, 4);
        // 4 frames over a 2 ms span, not over 1.5 billion seconds.
        assert!(
            (1_000.0..4_000.0).contains(&report.offered_fps),
            "offered_fps {}",
            report.offered_fps
        );
    }

    #[test]
    fn policy_sweep_returns_reports_in_order() {
        let bs = bundles(2);
        let plan = FleetPlan::build(
            &bs,
            &FleetConfig::new(vec![BoardSpec::zcu104("a"), BoardSpec::ultra96("b")]),
        )
        .unwrap();
        let deployment = plan.deploy(&bs, &CompileConfig::default()).unwrap();
        let capture = two_phase_capture(60, 500, 0, 0);
        let scenarios = vec![
            ServeScenario {
                name: "drop".into(),
                source: CaptureSource::Capture(&capture),
                config: ReplayConfig::default().with_pacing(Pacing::AsRecorded),
            },
            ServeScenario {
                name: "shed".into(),
                source: CaptureSource::Capture(&capture),
                config: ReplayConfig::default()
                    .with_pacing(Pacing::AsRecorded)
                    .with_admission(AdmissionPolicy::ShedLowestValue {
                        priorities: vec![1, 2],
                    }),
            },
        ];
        let reports = ServeHarness::sweep(|| Ok(deployment.serve_backend()), &scenarios).unwrap();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].admission, "drop-frames");
        assert_eq!(reports[1].admission, "shed-lowest-value");
        // Identical serving conditions, no overload: classifications and
        // headline accounting agree.
        assert_eq!(reports[0].offered, reports[1].offered);
        assert_eq!(reports[0].verdicts, reports[1].verdicts);
        assert_eq!(
            ServeReport::table_header().len(),
            reports[0].table_row().len()
        );
    }
}
