//! ASCII table rendering for the benchmark harness — the same rows and
//! columns the paper prints.

use std::fmt::Write as _;

/// A simple fixed-column table with aligned ASCII rendering.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new<S: Into<String>>(title: S, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| (*h).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    ///
    /// # Panics
    ///
    /// Panics when the cell count differs from the header count.
    pub fn push_row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience for `&str` cells.
    pub fn push_strs(&mut self, cells: &[&str]) -> &mut Self {
        let owned: Vec<String> = cells.iter().map(|c| (*c).to_owned()).collect();
        self.push_row(&owned)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let mut header = String::new();
        for (w, h) in widths.iter().zip(&self.headers) {
            let _ = write!(header, "| {h:<w$} ");
        }
        header.push('|');
        let rule = "-".repeat(header.len());
        let _ = writeln!(out, "{rule}");
        let _ = writeln!(out, "{header}");
        let _ = writeln!(out, "{rule}");
        for row in &self.rows {
            let mut line = String::new();
            for (w, cell) in widths.iter().zip(row) {
                let _ = write!(line, "| {cell:<w$} ");
            }
            line.push('|');
            let _ = writeln!(out, "{line}");
        }
        let _ = writeln!(out, "{rule}");
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a percentage with the paper's two-decimal style.
pub fn pct(value: f64) -> String {
    format!("{value:.2}")
}

/// Formats an optional percentage (`-` when the source didn't report it).
pub fn pct_opt(value: Option<f64>) -> String {
    value.map_or_else(|| "-".to_owned(), pct)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Demo", &["Model", "F1"]);
        t.push_strs(&["DCNN", "99.95"]);
        t.push_strs(&["4-bit-QMLP", "99.99"]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("| Model"));
        assert!(s.contains("| 4-bit-QMLP | 99.99 |"));
        // All data lines have equal width.
        let lines: Vec<&str> = s.lines().filter(|l| l.starts_with('|')).collect();
        assert!(lines.windows(2).all(|w| w[0].len() == w[1].len()));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_strs(&["only one"]);
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(99.994), "99.99");
        assert_eq!(pct_opt(None), "-");
        assert_eq!(pct_opt(Some(0.13)), "0.13");
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new("x", &["a"]);
        assert!(t.is_empty());
        t.push_strs(&["1"]);
        assert_eq!(t.len(), 1);
    }
}
