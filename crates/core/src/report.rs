//! Shared report building blocks: the latency/energy statistics every
//! serving path aggregates through, and ASCII table rendering for the
//! benchmark harness — the same rows and columns the paper prints.

use std::fmt::Write as _;

use canids_can::time::SimTime;

/// Latency distribution summary shared by every serving report
/// (software line rate, single-ECU, fleet): median, tail and worst-case
/// verdict latency over one replay.
///
/// Percentiles use the **nearest-rank on the zero-based index** rule:
/// for `n` sorted samples, quantile `q` reads index
/// `round((n - 1) · q)`. This is exactly the formula the three
/// pre-unification report paths used, so reports computed through this
/// type are bit-identical to the historical numbers.
///
/// # Example
///
/// ```
/// use canids_can::time::SimTime;
/// use canids_core::report::LatencyStats;
///
/// let samples: Vec<SimTime> = (1..=100).map(SimTime::from_micros).collect();
/// let stats = LatencyStats::from_unsorted(samples);
/// assert_eq!(stats.p50, SimTime::from_micros(51)); // round(99 * 0.5) = 50
/// assert_eq!(stats.p99, SimTime::from_micros(99)); // round(99 * 0.99) = 98
/// assert_eq!(stats.max, SimTime::from_micros(100));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyStats {
    /// Median (50th-percentile) latency.
    pub p50: SimTime,
    /// 99th-percentile latency.
    pub p99: SimTime,
    /// Worst observed latency.
    pub max: SimTime,
}

impl LatencyStats {
    /// Nearest-rank percentile over **sorted** samples (see the type
    /// docs for the exact rule). Empty input reads as zero.
    pub fn percentile(sorted: &[SimTime], q: f64) -> SimTime {
        if sorted.is_empty() {
            return SimTime::ZERO;
        }
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        sorted[idx.min(sorted.len() - 1)]
    }

    /// Summarises a **sorted** sample vector.
    pub fn from_sorted(sorted: &[SimTime]) -> Self {
        LatencyStats {
            p50: Self::percentile(sorted, 0.50),
            p99: Self::percentile(sorted, 0.99),
            max: sorted.last().copied().unwrap_or(SimTime::ZERO),
        }
    }

    /// Sorts the samples, then summarises them.
    pub fn from_unsorted(mut samples: Vec<SimTime>) -> Self {
        samples.sort_unstable();
        Self::from_sorted(&samples)
    }
}

/// Power/energy accounting of one replay on a modelled board (absent on
/// the pure-software serving path, which has no rail model).
///
/// # Example
///
/// ```
/// use canids_core::report::EnergyStats;
///
/// let e = EnergyStats { mean_power_w: 2.09, energy_per_message_j: 0.25e-3 };
/// assert!(e.mean_power_w > 2.0 && e.energy_per_message_j < 1e-3);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyStats {
    /// Mean board power over the replay (rail model).
    pub mean_power_w: f64,
    /// Energy per inspected message.
    pub energy_per_message_j: f64,
}

/// A simple fixed-column table with aligned ASCII rendering.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new<S: Into<String>>(title: S, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| (*h).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    ///
    /// # Panics
    ///
    /// Panics when the cell count differs from the header count.
    pub fn push_row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience for `&str` cells.
    pub fn push_strs(&mut self, cells: &[&str]) -> &mut Self {
        let owned: Vec<String> = cells.iter().map(|c| (*c).to_owned()).collect();
        self.push_row(&owned)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let mut header = String::new();
        for (w, h) in widths.iter().zip(&self.headers) {
            let _ = write!(header, "| {h:<w$} ");
        }
        header.push('|');
        let rule = "-".repeat(header.len());
        let _ = writeln!(out, "{rule}");
        let _ = writeln!(out, "{header}");
        let _ = writeln!(out, "{rule}");
        for row in &self.rows {
            let mut line = String::new();
            for (w, cell) in widths.iter().zip(row) {
                let _ = write!(line, "| {cell:<w$} ");
            }
            line.push('|');
            let _ = writeln!(out, "{line}");
        }
        let _ = writeln!(out, "{rule}");
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a percentage with the paper's two-decimal style.
pub fn pct(value: f64) -> String {
    format!("{value:.2}")
}

/// Formats an optional percentage (`-` when the source didn't report it).
pub fn pct_opt(value: Option<f64>) -> String {
    value.map_or_else(|| "-".to_owned(), pct)
}

/// Formats `part` as a percentage of `whole` in the paper's two-decimal
/// style (`-` when `whole` is zero), used by the population tables for
/// served/shed frame shares.
pub fn pct_of(part: u64, whole: u64) -> String {
    if whole == 0 {
        "-".to_owned()
    } else {
        pct(100.0 * part as f64 / whole as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Demo", &["Model", "F1"]);
        t.push_strs(&["DCNN", "99.95"]);
        t.push_strs(&["4-bit-QMLP", "99.99"]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("| Model"));
        assert!(s.contains("| 4-bit-QMLP | 99.99 |"));
        // All data lines have equal width.
        let lines: Vec<&str> = s.lines().filter(|l| l.starts_with('|')).collect();
        assert!(lines.windows(2).all(|w| w[0].len() == w[1].len()));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_strs(&["only one"]);
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(99.994), "99.99");
        assert_eq!(pct_opt(None), "-");
        assert_eq!(pct_opt(Some(0.13)), "0.13");
    }

    #[test]
    fn pct_of_guards_zero_denominator() {
        assert_eq!(pct_of(1, 0), "-");
        assert_eq!(pct_of(0, 4), "0.00");
        assert_eq!(pct_of(1, 4), "25.00");
        assert_eq!(pct_of(4, 4), "100.00");
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new("x", &["a"]);
        assert!(t.is_empty());
        t.push_strs(&["1"]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn latency_stats_empty_is_zero() {
        let s = LatencyStats::from_sorted(&[]);
        assert_eq!(s, LatencyStats::default());
        assert_eq!(LatencyStats::percentile(&[], 0.99), SimTime::ZERO);
    }

    #[test]
    fn latency_stats_single_sample_is_every_quantile() {
        let one = [SimTime::from_micros(7)];
        let s = LatencyStats::from_sorted(&one);
        assert_eq!(s.p50, SimTime::from_micros(7));
        assert_eq!(s.p99, SimTime::from_micros(7));
        assert_eq!(s.max, SimTime::from_micros(7));
    }

    #[test]
    fn nearest_rank_semantics_are_pinned() {
        // n = 4 sorted samples: p50 reads round(3 · 0.5) = round(1.5) =
        // index 2 (round half away from zero), p99 reads round(2.97) =
        // index 3.
        let sorted: Vec<SimTime> = [10u64, 20, 30, 40]
            .iter()
            .map(|&us| SimTime::from_micros(us))
            .collect();
        assert_eq!(
            LatencyStats::percentile(&sorted, 0.50),
            SimTime::from_micros(30)
        );
        assert_eq!(
            LatencyStats::percentile(&sorted, 0.99),
            SimTime::from_micros(40)
        );
        assert_eq!(
            LatencyStats::percentile(&sorted, 0.0),
            SimTime::from_micros(10)
        );
        assert_eq!(
            LatencyStats::percentile(&sorted, 1.0),
            SimTime::from_micros(40)
        );
    }

    #[test]
    fn from_unsorted_sorts_first() {
        let shuffled: Vec<SimTime> = [40u64, 10, 30, 20]
            .iter()
            .map(|&us| SimTime::from_micros(us))
            .collect();
        let sorted: Vec<SimTime> = {
            let mut v = shuffled.clone();
            v.sort_unstable();
            v
        };
        assert_eq!(
            LatencyStats::from_unsorted(shuffled),
            LatencyStats::from_sorted(&sorted)
        );
    }
}
