//! The end-to-end reproduction pipeline.
//!
//! One call chain covers the paper's whole method:
//!
//! 1. synthesise a Car-Hacking-style capture on a simulated bus,
//! 2. quantisation-aware-train the MLP (Brevitas-equivalent),
//! 3. streamline to integer thresholds and compile to a FINN-style IP,
//! 4. deploy on the simulated ZCU104 ECU,
//! 5. evaluate accuracy, latency, throughput, power and energy.

use canids_can::time::SimTime;
use canids_dataflow::ip::{AcceleratorIp, CompileConfig};
use canids_dataset::attacks::{AttackProfile, BurstSchedule};
use canids_dataset::features::{FrameEncoder, IdBitsPayloadBits};
use canids_dataset::generator::{Dataset, DatasetBuilder, TrafficConfig};
use canids_dataset::split::{train_test_split, SplitConfig};
use canids_qnn::export::IntegerMlp;
use canids_qnn::metrics::ConfusionMatrix;
use canids_qnn::mlp::{MlpConfig, QuantMlp};
use canids_qnn::trainer::{TrainConfig, Trainer};
use canids_soc::board::{BoardConfig, Zcu104Board};
use canids_soc::ecu::{EcuConfig, EcuReport, IdsEcu};

use crate::error::CoreError;

/// Full pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Attack to train a detector for.
    pub attack: AttackProfile,
    /// Capture length.
    pub capture_duration: SimTime,
    /// Master seed.
    pub seed: u64,
    /// Network topology + quantisation.
    pub mlp: MlpConfig,
    /// Training hyper-parameters.
    pub train: TrainConfig,
    /// Hardware compilation parameters.
    pub compile: CompileConfig,
    /// Train/test split.
    pub split: SplitConfig,
}

impl PipelineConfig {
    /// The paper's DoS configuration (continuous injection for dense
    /// attack coverage in short captures).
    pub fn dos() -> Self {
        PipelineConfig {
            attack: AttackProfile::dos().with_schedule(BurstSchedule::Continuous),
            ..PipelineConfig::default()
        }
    }

    /// The paper's Fuzzy configuration.
    pub fn fuzzy() -> Self {
        PipelineConfig {
            attack: AttackProfile::fuzzy().with_schedule(BurstSchedule::Continuous),
            ..PipelineConfig::default()
        }
    }

    /// Gear-spoofing configuration (extension beyond the paper's
    /// DoS/Fuzzy scope).
    pub fn gear_spoof() -> Self {
        PipelineConfig {
            attack: AttackProfile::gear_spoof().with_schedule(BurstSchedule::Continuous),
            ..PipelineConfig::default()
        }
    }

    /// RPM-spoofing configuration (extension).
    pub fn rpm_spoof() -> Self {
        PipelineConfig {
            attack: AttackProfile::rpm_spoof().with_schedule(BurstSchedule::Continuous),
            ..PipelineConfig::default()
        }
    }

    /// Scales the capture for quick tests (hundreds of frames).
    pub fn quick(mut self) -> Self {
        self.capture_duration = SimTime::from_millis(800);
        self.train.epochs = 3;
        self
    }
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            attack: AttackProfile::dos().with_schedule(BurstSchedule::Continuous),
            capture_duration: SimTime::from_secs(20),
            seed: 0xD05,
            mlp: MlpConfig::paper_4bit(),
            train: TrainConfig {
                epochs: 5,
                ..TrainConfig::default()
            },
            compile: CompileConfig::default(),
            split: SplitConfig::default(),
        }
    }
}

/// A trained and exported detector with its test-set metrics.
#[derive(Debug, Clone)]
pub struct TrainedDetector {
    /// The QAT network (float fake-quant form).
    pub mlp: QuantMlp,
    /// The streamlined integer network.
    pub int_mlp: IntegerMlp,
    /// Test-set confusion matrix of the *integer* model (deployment
    /// semantics — what Table I reports for us).
    pub test_cm: ConfusionMatrix,
    /// Held-out test capture (time-ordered), for ECU replay.
    pub test_set: Dataset,
}

impl TrainedDetector {
    /// A frame-at-a-time evaluator over this detector's integer model —
    /// the streaming serving mode (see [`crate::stream`]).
    pub fn streaming_evaluator(&self) -> crate::stream::StreamingEvaluator {
        crate::stream::StreamingEvaluator::new(self.int_mlp.clone())
    }

    /// This detector as a deployment bundle for the N-detector engine
    /// (see [`crate::deploy::DeploymentPlan`]).
    pub fn bundle(
        &self,
        kind: canids_dataset::attacks::AttackKind,
    ) -> crate::deploy::DetectorBundle {
        crate::deploy::DetectorBundle::new(kind, self.int_mlp.clone())
    }
}

/// The complete pipeline outcome for one attack type.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Detector + metrics.
    pub detector: TrainedDetector,
    /// The compiled IP's facts (latency, resources, power).
    pub ip: AcceleratorIp,
    /// ECU replay report (latency/throughput/power/energy as measured
    /// through the full SoC path).
    pub ecu: EcuReport,
    /// Fraction of replayed verdicts that matched ground truth.
    pub replay_agreement: f64,
}

/// Runs the pipeline stages.
///
/// # Example
///
/// ```no_run
/// use canids_core::pipeline::{IdsPipeline, PipelineConfig};
///
/// let report = IdsPipeline::new(PipelineConfig::dos()).run()?;
/// let (p, r, f1, fnr) = report.detector.test_cm.table_row();
/// assert!(f1 > 99.0);
/// # Ok::<(), canids_core::CoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct IdsPipeline {
    config: PipelineConfig,
}

impl IdsPipeline {
    /// Creates a pipeline with the given configuration.
    pub fn new(config: PipelineConfig) -> Self {
        IdsPipeline { config }
    }

    /// The configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Stage 1: synthesise the labelled capture.
    pub fn generate_capture(&self) -> Dataset {
        DatasetBuilder::new(TrafficConfig {
            duration: self.config.capture_duration,
            attack: Some(self.config.attack),
            seed: self.config.seed,
            ..TrafficConfig::default()
        })
        .build()
    }

    /// Stage 2: QAT training + integer export + test-set evaluation.
    ///
    /// # Errors
    ///
    /// [`CoreError::DegenerateCapture`] when a class is missing; training
    /// and export errors otherwise.
    pub fn train(&self, capture: &Dataset) -> Result<TrainedDetector, CoreError> {
        let attacks = capture.iter().filter(|r| r.label.is_attack()).count();
        let normals = capture.len() - attacks;
        if attacks == 0 || normals == 0 {
            return Err(CoreError::DegenerateCapture { attacks, normals });
        }
        let (train_set, test_set) = train_test_split(capture, self.config.split);
        let encoder = IdBitsPayloadBits;
        let (xs, ys) = train_set.to_xy(&encoder);
        let mut mlp = QuantMlp::new(self.config.mlp.clone())?;
        Trainer::new(self.config.train.clone()).fit(&mut mlp, &xs, &ys)?;
        let int_mlp = mlp.export()?;

        let (txs, tys) = test_set.to_xy(&encoder);
        let mut test_cm = ConfusionMatrix::new();
        for (x, &y) in txs.iter().zip(&tys) {
            let pred = int_mlp.infer_bits(x).class;
            test_cm.record(pred != 0, y != 0);
        }
        Ok(TrainedDetector {
            mlp,
            int_mlp,
            test_cm,
            test_set,
        })
    }

    /// Stage 3: FINN-style compilation to an IP core.
    ///
    /// # Errors
    ///
    /// Propagates compilation/verification errors.
    pub fn compile(&self, int_mlp: &IntegerMlp) -> Result<AcceleratorIp, CoreError> {
        Ok(AcceleratorIp::compile(
            int_mlp,
            self.config.compile.clone(),
        )?)
    }

    /// Stage 4+5: deploy on the ECU and replay the test capture.
    ///
    /// # Errors
    ///
    /// Propagates SoC errors.
    pub fn deploy_and_replay(
        &self,
        ip: AcceleratorIp,
        test_set: &Dataset,
    ) -> Result<(EcuReport, f64), CoreError> {
        let mut board = Zcu104Board::new(BoardConfig::default());
        let idx = board.attach_accelerator(ip)?;
        let mut ecu = IdsEcu::new(board, vec![idx], EcuConfig::default());
        let frames: Vec<_> = test_set.iter().map(|r| (r.timestamp, r.frame)).collect();
        let encoder = IdBitsPayloadBits;
        let featurize = move |f: &canids_can::frame::CanFrame| encoder.encode(f);
        let report = ecu.process_capture(&frames, &featurize)?;

        // Verdict agreement with ground truth over the replay.
        let truth: std::collections::BTreeMap<u64, bool> = test_set
            .iter()
            .map(|r| (r.timestamp.as_nanos(), r.label.is_attack()))
            .collect();
        let mut agree = 0usize;
        for d in &report.detections {
            if truth
                .get(&d.arrival.as_nanos())
                .is_some_and(|&t| t == d.flagged)
            {
                agree += 1;
            }
        }
        let agreement = if report.detections.is_empty() {
            0.0
        } else {
            agree as f64 / report.detections.len() as f64
        };
        Ok((report, agreement))
    }

    /// Runs every stage and assembles the full report.
    ///
    /// # Errors
    ///
    /// Any stage error.
    pub fn run(&self) -> Result<PipelineReport, CoreError> {
        let capture = self.generate_capture();
        let detector = self.train(&capture)?;
        let ip = self.compile(&detector.int_mlp)?;
        let (ecu, replay_agreement) = self.deploy_and_replay(ip.clone(), &detector.test_set)?;
        Ok(PipelineReport {
            detector,
            ip,
            ecu,
            replay_agreement,
        })
    }

    /// Runs several full pipelines concurrently, one scoped thread per
    /// configuration (capture generation, training and replay all happen
    /// in parallel across scenarios, mirroring the DSE sweep). Results
    /// come back in configuration order.
    pub fn run_many(configs: &[PipelineConfig]) -> Vec<Result<PipelineReport, CoreError>> {
        crate::par::scoped_map(configs, |config| IdsPipeline::new(config.clone()).run())
    }

    /// Trains one detector per configuration concurrently (capture
    /// synthesis + QAT + integer export, no per-model deployment) — the
    /// front half of an N-detector deployment, whose back half is one
    /// *shared* plan/compile/serve pass through
    /// [`crate::deploy::DeploymentPlan`] instead of N independent
    /// single-model deployments. Results come back in configuration
    /// order, each paired with its attack kind for bundling.
    pub fn train_many(
        configs: &[PipelineConfig],
    ) -> Vec<Result<(canids_dataset::attacks::AttackKind, TrainedDetector), CoreError>> {
        crate::par::scoped_map(configs, |config| {
            let pipeline = IdsPipeline::new(config.clone());
            let detector = pipeline.train(&pipeline.generate_capture())?;
            Ok((config.attack.kind, detector))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_dos_pipeline_end_to_end() {
        let report = IdsPipeline::new(PipelineConfig::dos().quick())
            .run()
            .unwrap();
        let cm = report.detector.test_cm;
        assert!(cm.accuracy() > 0.99, "accuracy {}", cm.accuracy());
        assert!(
            report.replay_agreement > 0.99,
            "{}",
            report.replay_agreement
        );
        let ms = report.ecu.mean_latency.as_millis_f64();
        assert!((0.09..0.14).contains(&ms), "latency {ms} ms");
    }

    #[test]
    fn quick_fuzzy_pipeline_end_to_end() {
        let report = IdsPipeline::new(PipelineConfig::fuzzy().quick())
            .run()
            .unwrap();
        let cm = report.detector.test_cm;
        assert!(cm.f1() > 0.98, "f1 {}", cm.f1());
        assert!(cm.fnr() < 0.02, "fnr {}", cm.fnr());
    }

    #[test]
    fn stages_compose_manually() {
        let pipeline = IdsPipeline::new(PipelineConfig::dos().quick());
        let capture = pipeline.generate_capture();
        assert!(capture.len() > 200);
        let detector = pipeline.train(&capture).unwrap();
        let ip = pipeline.compile(&detector.int_mlp).unwrap();
        assert_eq!(ip.input_dim(), 75);
        let (ecu, agreement) = pipeline.deploy_and_replay(ip, &detector.test_set).unwrap();
        assert!(!ecu.detections.is_empty());
        assert!(agreement > 0.9);
    }

    #[test]
    fn run_many_is_deterministic_parallel_run() {
        let config = PipelineConfig::dos().quick();
        let sequential = IdsPipeline::new(config.clone()).run().unwrap();
        let mut parallel = IdsPipeline::run_many(&[config]);
        let report = parallel.remove(0).unwrap();
        assert_eq!(report.detector.test_cm, sequential.detector.test_cm);
        assert_eq!(report.ecu.dropped, sequential.ecu.dropped);
        // The streaming evaluator over the held-out capture reproduces
        // the batch test-set confusion matrix exactly.
        let mut eval = report.detector.streaming_evaluator();
        for rec in report.detector.test_set.iter() {
            eval.push(rec);
        }
        assert_eq!(*eval.confusion(), report.detector.test_cm);
    }

    #[test]
    fn degenerate_capture_rejected() {
        let pipeline = IdsPipeline::new(PipelineConfig {
            attack: AttackProfile::dos(), // default bursts start at 1 s
            capture_duration: SimTime::from_millis(200),
            ..PipelineConfig::default()
        });
        let capture = pipeline.generate_capture();
        let err = pipeline.train(&capture).unwrap_err();
        assert!(matches!(err, CoreError::DegenerateCapture { .. }));
    }
}
