//! Population serving: the fourth serving tier (software → ECU → fleet →
//! **population**), multiplexing many concurrent tenant capture streams
//! onto a bounded pool of serving backends.
//!
//! The paper's deployment story is one quantised IDS watching one CAN
//! bus; a production backend monitors a vehicle *population* — every
//! vehicle uploads a small capture stream (one tenant, ~500 kb/s wire
//! pacing) and the backend serves all of them at once. This module is
//! that layer, built on top of [`ServeHarness`]:
//!
//! * [`TenantStream`] / [`Population`] — the tenant registry: each
//!   tenant is one capture at its own wire bitrate and static priority,
//!   arriving on a staggered deterministic schedule
//!   ([`PopulationConfig::stagger`] between tenant ordinals).
//! * **Work-stealing scheduling** — tenant replays run on the crate's
//!   internal deterministic work-stealing chunk pool (`par`). The tenant
//!   is the stealing unit, so per-tenant frame order is preserved by
//!   construction while a slow tenant no longer pins a contiguous slice
//!   of the population to one worker. The pool size
//!   ([`PopulationConfig::workers`]) is execution-only.
//! * [`TenantAdmission`] — cross-tenant admission control generalising
//!   [`crate::serve::AdmissionPolicy::ShedLowestMeasuredValue`] from
//!   models to tenant streams: when more streams are live than the
//!   backend pool has slots, the stream with the lowest windowed
//!   confirmed-positive count is shed (typed [`TenantAction::Shed`] /
//!   [`TenantAction::Readmit`] events), and shed streams are readmitted
//!   highest-value-first as slots free.
//! * [`PopulationReport`] — per-tenant [`TenantReport`]s aggregated into
//!   population percentiles (pooled verdict latency, drops, sustained
//!   fps) with a **bit-deterministic merge in tenant-ordinal order**:
//!   [`PopulationReport::fingerprint`] is identical for any worker
//!   count, the same guarantee the sharded replay and telemetry merges
//!   pin for shards.
//!
//! Determinism contract: a single-tenant population run is bit-identical
//! to a plain [`ServeHarness::replay`] of the same capture under the
//! same [`ReplayConfig`] — phase 1 *is* that code path, and the
//! admission ledger (phase 2) is pure integer bookkeeping over the
//! deterministic arrival schedule.

use std::cmp::Reverse;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::time::Duration;

use canids_can::time::SimTime;
use canids_can::timing::Bitrate;
use canids_dataset::generator::Dataset;
use canids_dataset::stream::paced_records;

use crate::error::CoreError;
use crate::report::LatencyStats;
use crate::serve::{
    Pacing, ReplayConfig, ServeBackend, ServeHarness, ServeReport, ShardWorkers, Verdict,
};
use crate::telemetry::{Probe, Stage, TelemetryReport};

/// One tenant: a vehicle's capture stream, replayed at its own wire
/// bitrate (500 kb/s by default — the common body/powertrain rate) with
/// a static priority used only to break admission-score ties.
///
/// # Example
///
/// ```
/// use canids_can::timing::Bitrate;
/// use canids_core::population::TenantStream;
/// use canids_dataset::generator::Dataset;
///
/// let t = TenantStream::new("vehicle-0", Dataset::from_records(Vec::new()))
///     .with_priority(3);
/// assert_eq!(t.bitrate, Bitrate::HIGH_SPEED_500K);
/// assert_eq!(t.priority, 3);
/// ```
#[derive(Debug, Clone)]
pub struct TenantStream {
    /// Display name (vehicle identifier).
    pub name: String,
    /// The tenant's capture.
    pub capture: Dataset,
    /// Wire bitrate the capture is paced at (overrides
    /// [`ReplayConfig::bitrate`] for this tenant).
    pub bitrate: Bitrate,
    /// Static value, used only to break windowed-score ties: on a shed
    /// tie the *lower*-priority stream is shed, on a readmit tie the
    /// *higher*-priority stream returns first.
    pub priority: u32,
}

impl TenantStream {
    /// A tenant at the default 500 kb/s pacing and priority 0.
    pub fn new<S: Into<String>>(name: S, capture: Dataset) -> Self {
        TenantStream {
            name: name.into(),
            capture,
            bitrate: Bitrate::HIGH_SPEED_500K,
            priority: 0,
        }
    }

    /// Sets the tenant's wire bitrate (builder style).
    pub fn with_bitrate(mut self, bitrate: Bitrate) -> Self {
        self.bitrate = bitrate;
        self
    }

    /// Sets the tenant's static tie-break priority (builder style).
    pub fn with_priority(mut self, priority: u32) -> Self {
        self.priority = priority;
        self
    }
}

/// Cross-tenant admission control: what happens when more tenant
/// streams are live than the backend pool has slots.
///
/// # Example
///
/// ```
/// use canids_core::population::TenantAdmission;
///
/// let a = TenantAdmission::ShedLowestValueTenant { capacity: 2, window: 256 };
/// assert_eq!(a.label(), "shed-lowest-value-tenant");
/// assert_eq!(TenantAdmission::AdmitAll.label(), "admit-all");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TenantAdmission {
    /// Every tenant is admitted for its whole stream (capacity is
    /// unbounded); no tenant events are emitted.
    #[default]
    AdmitAll,
    /// At most `capacity` streams are admitted at once. When a new
    /// stream arrives into a full pool, the stream with the lowest
    /// windowed confirmed-positive count — over each tenant's last
    /// `window` served frames — is shed (possibly the newcomer itself).
    /// Ties shed the lower static priority, then the youngest stream.
    /// When an admitted stream ends, the highest-value shed stream with
    /// frames remaining is readmitted (ties prefer higher priority, then
    /// the oldest stream). This is
    /// [`crate::serve::AdmissionPolicy::ShedLowestMeasuredValue`]
    /// generalised from models to tenant streams.
    ShedLowestValueTenant {
        /// Backend pool slots (clamped to at least 1).
        capacity: usize,
        /// Sliding window, in served frames per tenant, over which
        /// confirmed positives are counted (clamped to at least 1).
        window: usize,
    },
}

impl TenantAdmission {
    /// Short label for tables and JSON reports.
    pub fn label(&self) -> &'static str {
        match self {
            TenantAdmission::AdmitAll => "admit-all",
            TenantAdmission::ShedLowestValueTenant { .. } => "shed-lowest-value-tenant",
        }
    }
}

/// Configuration of one population run.
///
/// # Example
///
/// ```
/// use canids_can::time::SimTime;
/// use canids_core::population::{PopulationConfig, TenantAdmission};
/// use canids_core::serve::ShardWorkers;
///
/// let cfg = PopulationConfig::default()
///     .with_stagger(SimTime::from_millis(1))
///     .with_admission(TenantAdmission::ShedLowestValueTenant { capacity: 4, window: 128 })
///     .with_workers(ShardWorkers::Fixed(2));
/// assert_eq!(cfg.stagger, SimTime::from_millis(1));
/// assert_eq!(cfg.admission.label(), "shed-lowest-value-tenant");
/// ```
#[derive(Debug, Clone)]
pub struct PopulationConfig {
    /// Per-tenant replay template. Each tenant replays under this
    /// configuration with [`ReplayConfig::bitrate`] replaced by the
    /// tenant's own bitrate and [`ReplayConfig::shards`] forced to 1
    /// (the population layer owns the parallelism).
    pub replay: ReplayConfig,
    /// Deterministic arrival stagger: tenant `k`'s stream starts at
    /// `k · stagger` on the population clock.
    pub stagger: SimTime,
    /// Cross-tenant admission policy.
    pub admission: TenantAdmission,
    /// Worker pool for the per-tenant replays — **execution-only**; any
    /// value produces a bit-identical [`PopulationReport`].
    pub workers: ShardWorkers,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        PopulationConfig {
            replay: ReplayConfig::default(),
            stagger: SimTime::from_micros(500),
            admission: TenantAdmission::AdmitAll,
            workers: ShardWorkers::Auto,
        }
    }
}

impl PopulationConfig {
    /// Sets the per-tenant replay template (builder style).
    pub fn with_replay(mut self, replay: ReplayConfig) -> Self {
        self.replay = replay;
        self
    }

    /// Sets the arrival stagger (builder style).
    pub fn with_stagger(mut self, stagger: SimTime) -> Self {
        self.stagger = stagger;
        self
    }

    /// Sets the cross-tenant admission policy (builder style).
    pub fn with_admission(mut self, admission: TenantAdmission) -> Self {
        self.admission = admission;
        self
    }

    /// Sets the worker pool (builder style).
    pub fn with_workers(mut self, workers: ShardWorkers) -> Self {
        self.workers = workers;
        self
    }
}

/// What a cross-tenant admission event did.
///
/// # Example
///
/// ```
/// use canids_core::population::TenantAction;
///
/// assert_ne!(TenantAction::Shed, TenantAction::Readmit);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantAction {
    /// Tenant stream detached from the pool; its frames pass unserved
    /// (counted in [`TenantReport::shed_frames`]) until readmission.
    Shed,
    /// Previously shed tenant stream readmitted into a freed slot.
    Readmit,
}

/// One cross-tenant admission event, on the population clock.
///
/// # Example
///
/// ```
/// use canids_can::time::SimTime;
/// use canids_core::population::{TenantAction, TenantEvent};
///
/// let e = TenantEvent {
///     time: SimTime::from_millis(2),
///     tenant: 5,
///     action: TenantAction::Shed,
/// };
/// assert_eq!(e.action, TenantAction::Shed);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantEvent {
    /// Population-clock time the action was taken.
    pub time: SimTime,
    /// Tenant ordinal acted on.
    pub tenant: usize,
    /// What happened.
    pub action: TenantAction,
}

/// One tenant's slice of a population run: the untouched phase-1
/// [`ServeReport`] plus the admission ledger's frame accounting.
///
/// The conservation invariant
/// `offered == serviced + dropped + shed_frames` holds for every tenant:
/// each offered frame is served exactly once, dropped by the backend
/// FIFO, or covered by a typed shed window — never lost silently.
///
/// # Example
///
/// ```no_run
/// use canids_core::population::{Population, PopulationConfig, TenantStream};
/// use canids_core::prelude::*;
/// use canids_core::serve::SoftwareBackend;
///
/// let trained = IdsPipeline::new(PipelineConfig::dos().quick()).run()?;
/// let model = trained.detector.int_mlp.clone();
/// let capture = IdsPipeline::new(PipelineConfig::dos().quick()).generate_capture();
/// let pop = Population::with_tenants(vec![TenantStream::new("vehicle-0", capture)]);
/// let report = pop.serve(
///     || Ok(SoftwareBackend::single(model.clone())),
///     &PopulationConfig::default(),
/// )?;
/// let t = &report.tenants[0];
/// assert_eq!(t.offered, t.serviced + t.dropped as usize + t.shed_frames);
/// # Ok::<(), canids_core::CoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// Tenant ordinal (registry order).
    pub tenant: usize,
    /// Tenant display name.
    pub name: String,
    /// Frames the tenant's stream offered.
    pub offered: usize,
    /// Frames served while the tenant was admitted.
    pub serviced: usize,
    /// Frames dropped by the backend FIFO while admitted.
    pub dropped: u64,
    /// Frames that passed while the tenant was shed.
    pub shed_frames: usize,
    /// Confirmed positives (flagged frames whose ground truth was an
    /// attack) among the tenant's served frames.
    pub confirmed_positives: usize,
    /// Verdict latency over the tenant's served frames.
    pub latency: LatencyStats,
    /// Number of admitted residency windows the stream was served in
    /// (1 without sheds; 0 when shed for its whole lifetime).
    pub windows: usize,
    /// The tenant's phase-1 replay report, bit-identical to a plain
    /// [`ServeHarness::replay`] of the same capture and configuration.
    pub serve: ServeReport,
}

impl TenantReport {
    /// `true` when the frame-conservation ledger balances:
    /// `offered == serviced + dropped + shed_frames`.
    pub fn conserved(&self) -> bool {
        self.offered == self.serviced + self.dropped as usize + self.shed_frames
    }

    /// Column headers matching [`TenantReport::table_row`].
    pub fn table_header() -> [&'static str; 8] {
        [
            "Tenant",
            "Offered",
            "Serviced",
            "Dropped",
            "Shed",
            "Confirmed",
            "p50",
            "p99",
        ]
    }

    /// This tenant as one formatted row for the population tables.
    pub fn table_row(&self) -> Vec<String> {
        vec![
            self.name.clone(),
            format!("{}", self.offered),
            format!("{}", self.serviced),
            format!("{}", self.dropped),
            format!("{}", self.shed_frames),
            format!("{}", self.confirmed_positives),
            format!("{:.1} us", self.latency.p50.as_micros_f64()),
            format!("{:.1} us", self.latency.p99.as_micros_f64()),
        ]
    }
}

/// The aggregated result of one population run: per-tenant reports
/// merged in **tenant-ordinal order** into population totals, pooled
/// latency percentiles and the tenant event log.
///
/// # Example
///
/// ```
/// use canids_core::population::PopulationReport;
///
/// let empty = PopulationReport::default();
/// assert!(empty.keeps_up());
/// assert_eq!(empty.fingerprint(), PopulationReport::default().fingerprint());
/// ```
#[derive(Debug, Clone, Default)]
pub struct PopulationReport {
    /// Per-tenant reports, in tenant-ordinal order.
    pub tenants: Vec<TenantReport>,
    /// Frames offered across the population.
    pub offered: usize,
    /// Frames served across the population.
    pub serviced: usize,
    /// Frames dropped by backend FIFOs across the population.
    pub dropped: u64,
    /// Frames that passed while their tenant was shed.
    pub shed_frames: usize,
    /// Confirmed positives across the population.
    pub confirmed_positives: usize,
    /// Earliest population-clock arrival.
    pub first_arrival: SimTime,
    /// Latest population-clock arrival.
    pub last_arrival: SimTime,
    /// Offered load in frames/s over the population-clock span.
    pub offered_fps: f64,
    /// Aggregate measured host capacity in frames/s: total served frames
    /// over the **slowest** tenant replay's busy wall (software backends
    /// only — `None` on simulated backends, exactly like the sharded
    /// merge).
    pub sustained_fps: Option<f64>,
    /// Pooled verdict latency over every served frame, merged in
    /// tenant-ordinal order then sorted.
    pub latency: LatencyStats,
    /// Cross-tenant admission events in population-clock order.
    pub events: Vec<TenantEvent>,
    /// Merged telemetry: per-tenant replay telemetry folded in
    /// tenant-ordinal order (each tenant is one trace lane, shifted onto
    /// the population clock) plus the population layer's own
    /// [`Stage::TenantWindow`] / [`Stage::TenantAdmission`] spans.
    /// `None` unless the replay template enabled telemetry.
    pub telemetry: Option<TelemetryReport>,
}

impl PopulationReport {
    /// `true` when no backend FIFO dropped a frame (shed frames are
    /// governed, not dropped, and are accounted separately).
    pub fn keeps_up(&self) -> bool {
        self.dropped == 0
    }

    /// Tenant shed events.
    pub fn shed_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| e.action == TenantAction::Shed)
            .count()
    }

    /// Tenant readmit events.
    pub fn readmit_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| e.action == TenantAction::Readmit)
            .count()
    }

    /// Nearest-rank percentile over the per-tenant p99 latencies — the
    /// population's tail-of-tails view (zero when there are no tenants).
    pub fn tenant_p99_percentile(&self, q: f64) -> SimTime {
        let mut p99s: Vec<SimTime> = self.tenants.iter().map(|t| t.latency.p99).collect();
        p99s.sort_unstable();
        LatencyStats::percentile(&p99s, q)
    }

    /// A deterministic fingerprint over every population and per-tenant
    /// figure — floats via [`f64::to_bits`], times at nanosecond
    /// resolution, events and tenants in order. Equal fingerprints mean
    /// bit-identical reports; the population tests pin this string
    /// across worker counts 1/2/Auto.
    pub fn fingerprint(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "pop:{} {} {} {} {} fa:{:?} la:{:?} fps:{:016x} lat:{:?} sustained:{:?}",
            self.offered,
            self.serviced,
            self.dropped,
            self.shed_frames,
            self.confirmed_positives,
            self.first_arrival,
            self.last_arrival,
            self.offered_fps.to_bits(),
            self.latency,
            self.sustained_fps.map(f64::to_bits),
        );
        let _ = write!(s, " events:{}", self.events.len());
        for e in &self.events {
            let _ = write!(s, "|{:?}@t{}:{:?}", e.action, e.tenant, e.time);
        }
        for t in &self.tenants {
            let _ = write!(
                s,
                "|t{} {} o:{} s:{} d:{} x:{} c:{} w:{} lat:{:?}",
                t.tenant,
                t.name,
                t.offered,
                t.serviced,
                t.dropped,
                t.shed_frames,
                t.confirmed_positives,
                t.windows,
                t.latency,
            );
            let r = &t.serve;
            let _ = write!(
                s,
                " serve[{} {} {} {} {} cm:{:?} fps:{:016x} sustained:{:?} lat:{:?} ev:{} b:{}]",
                r.offered,
                r.serviced,
                r.dropped,
                r.flagged,
                r.fully_covered,
                r.cm,
                r.offered_fps.to_bits(),
                r.sustained_fps.map(f64::to_bits),
                r.latency,
                r.events.len(),
                r.boards.len(),
            );
        }
        if let Some(t) = &self.telemetry {
            let _ = write!(s, "|telemetry:{}", t.fingerprint());
        }
        s
    }
}

/// The tenant registry: an ordered set of [`TenantStream`]s served as
/// one population. Tenant ordinals are registry order and are the
/// deterministic merge key for every aggregate.
///
/// # Example
///
/// ```
/// use canids_core::population::{Population, TenantStream};
/// use canids_dataset::generator::Dataset;
///
/// let mut pop = Population::new();
/// let ordinal = pop.push(TenantStream::new("vehicle-0", Dataset::from_records(Vec::new())));
/// assert_eq!(ordinal, 0);
/// assert_eq!(pop.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Population {
    tenants: Vec<TenantStream>,
}

impl Population {
    /// An empty registry.
    pub fn new() -> Self {
        Population::default()
    }

    /// A registry over the given tenants (ordinals are vector order).
    pub fn with_tenants(tenants: Vec<TenantStream>) -> Self {
        Population { tenants }
    }

    /// Registers a tenant, returning its ordinal.
    pub fn push(&mut self, tenant: TenantStream) -> usize {
        self.tenants.push(tenant);
        self.tenants.len() - 1
    }

    /// The registered tenants, in ordinal order.
    pub fn tenants(&self) -> &[TenantStream] {
        &self.tenants
    }

    /// Number of registered tenants.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// `true` when no tenant is registered.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// Serves every tenant stream, each through a fresh backend from
    /// `factory`, and aggregates one [`PopulationReport`].
    ///
    /// Phase 1 replays each tenant independently on the work-stealing
    /// pool — per-tenant results are bit-identical to a plain
    /// [`ServeHarness::replay`] under the tenant's configuration,
    /// whatever the scheduling. Phase 2 sweeps the staggered population
    /// arrival schedule through the cross-tenant admission ledger
    /// (single-threaded integer bookkeeping), producing the tenant event
    /// log and the frame-conservation accounting. The merge runs in
    /// tenant-ordinal order, so the report fingerprint does not depend
    /// on [`PopulationConfig::workers`].
    ///
    /// # Errors
    ///
    /// The first factory or replay error, if any.
    ///
    /// # Example
    ///
    /// ```no_run
    /// use canids_core::population::{Population, PopulationConfig, TenantStream};
    /// use canids_core::prelude::*;
    /// use canids_core::serve::SoftwareBackend;
    ///
    /// let trained = IdsPipeline::new(PipelineConfig::dos().quick()).run()?;
    /// let model = trained.detector.int_mlp.clone();
    /// let mut pop = Population::new();
    /// for k in 0..4 {
    ///     let capture = IdsPipeline::new(PipelineConfig::dos().quick()).generate_capture();
    ///     pop.push(TenantStream::new(format!("vehicle-{k}"), capture));
    /// }
    /// let report = pop.serve(
    ///     || Ok(SoftwareBackend::single(model.clone())),
    ///     &PopulationConfig::default(),
    /// )?;
    /// assert_eq!(report.tenants.len(), 4);
    /// assert!(report.tenants.iter().all(|t| t.conserved()));
    /// # Ok::<(), canids_core::CoreError>(())
    /// ```
    pub fn serve<B, F>(
        &self,
        factory: F,
        config: &PopulationConfig,
    ) -> Result<PopulationReport, CoreError>
    where
        B: ServeBackend,
        F: Fn() -> Result<B, CoreError> + Sync,
    {
        let n = self.tenants.len();
        if n == 0 {
            return Ok(PopulationReport::default());
        }

        // Phase 1: every tenant replays independently and in parallel on
        // the work-stealing pool. The tenant is the stealing unit, so
        // per-tenant frame order is trivially preserved and each result
        // is deterministic regardless of which worker served it.
        let jobs: Vec<usize> = (0..n).collect();
        let workers = config.workers.count(n);
        let outcomes = crate::par::scoped_map_with(&jobs, workers, |&k| {
            let tenant = &self.tenants[k];
            let tenant_config = tenant_replay_config(config, tenant);
            let mut verdicts: Vec<Verdict> = Vec::new();
            let report = ServeHarness::new(factory()?).replay_with(
                &tenant.capture,
                &tenant_config,
                &mut verdicts,
            )?;
            Ok::<_, CoreError>((report, verdicts))
        });
        let outcomes: Vec<(ServeReport, Vec<Verdict>)> =
            outcomes.into_iter().collect::<Result<_, _>>()?;

        // Phase 2: the cross-tenant admission ledger — a single-threaded
        // sweep over the staggered population arrival schedule.
        let ledger = Ledger::sweep(&self.tenants, config, &outcomes);
        Ok(ledger.into_report(&self.tenants, config, outcomes))
    }
}

/// The replay configuration tenant streams serve under: the population
/// template with the tenant's own bitrate, single-sharded (the
/// population layer owns the parallelism).
fn tenant_replay_config(config: &PopulationConfig, tenant: &TenantStream) -> ReplayConfig {
    ReplayConfig {
        bitrate: tenant.bitrate,
        shards: 1,
        ..config.replay.clone()
    }
}

/// One offered frame on the population clock.
#[derive(Debug, Clone, Copy)]
struct FrameAt {
    time: SimTime,
    tenant: usize,
    ordinal: usize,
}

/// The phase-2 admission ledger: per-tenant frame accounting, residency
/// windows and the tenant event log, produced by one deterministic
/// sweep over the population arrival schedule.
#[derive(Debug, Default)]
struct Ledger {
    serviced: Vec<usize>,
    dropped: Vec<u64>,
    shed_frames: Vec<usize>,
    confirmed: Vec<usize>,
    latencies: Vec<Vec<SimTime>>,
    windows: Vec<Vec<(SimTime, SimTime)>>,
    events: Vec<TenantEvent>,
    offered: Vec<usize>,
    first_arrival: SimTime,
    last_arrival: SimTime,
}

impl Ledger {
    /// Runs the admission sweep. Pure integer bookkeeping over the
    /// deterministic arrival schedule: no clocks, no thread state.
    fn sweep(
        tenants: &[TenantStream],
        config: &PopulationConfig,
        outcomes: &[(ServeReport, Vec<Verdict>)],
    ) -> Ledger {
        let n = tenants.len();
        let (capacity, window) = match config.admission {
            // Unbounded capacity makes AdmitAll fall out of the same
            // sweep with no events.
            TenantAdmission::AdmitAll => (usize::MAX, 1),
            TenantAdmission::ShedLowestValueTenant { capacity, window } => {
                (capacity.max(1), window.max(1))
            }
        };

        // The population arrival schedule: each tenant's frames paced
        // exactly as its replay paced them (same `paced_records` code
        // path), offset by the tenant's stagger slot, then interleaved
        // in (time, tenant, ordinal) order.
        let mut frames: Vec<FrameAt> = Vec::new();
        for (k, tenant) in tenants.iter().enumerate() {
            let offset = config.stagger.mul_u64(k as u64);
            let template = tenant_replay_config(config, tenant);
            match template.pacing {
                Pacing::Saturated | Pacing::FdClass => {
                    let paced = paced_records(&tenant.capture, template.wire_bitrate());
                    frames.extend(paced.enumerate().map(|(o, rec)| FrameAt {
                        time: offset + rec.timestamp,
                        tenant: k,
                        ordinal: o,
                    }));
                }
                Pacing::AsRecorded => {
                    frames.extend(tenant.capture.records().iter().enumerate().map(|(o, rec)| {
                        FrameAt {
                            time: offset + rec.timestamp,
                            tenant: k,
                            ordinal: o,
                        }
                    }));
                }
            }
        }
        frames.sort_by_key(|f| (f.time, f.tenant, f.ordinal));

        // Per-tenant verdict table, indexed by local frame ordinal
        // (frames the backend dropped have no verdict).
        let mut verdict_of: Vec<Vec<Option<Verdict>>> = Vec::with_capacity(n);
        for (k, (_, verdicts)) in outcomes.iter().enumerate() {
            let mut table = vec![None; tenants[k].capture.len()];
            for v in verdicts {
                if v.ordinal < table.len() {
                    table[v.ordinal] = Some(*v);
                }
            }
            verdict_of.push(table);
        }

        let total: Vec<usize> = tenants.iter().map(|t| t.capture.len()).collect();
        let mut ledger = Ledger {
            serviced: vec![0; n],
            dropped: vec![0; n],
            shed_frames: vec![0; n],
            confirmed: vec![0; n],
            latencies: vec![Vec::new(); n],
            windows: vec![Vec::new(); n],
            events: Vec::new(),
            offered: total.clone(),
            first_arrival: frames.first().map_or(SimTime::ZERO, |f| f.time),
            last_arrival: frames.last().map_or(SimTime::ZERO, |f| f.time),
        };

        let mut started = vec![false; n];
        let mut admitted = vec![false; n];
        let mut admitted_count = 0usize;
        let mut processed = vec![0usize; n];
        let mut open: Vec<Option<SimTime>> = vec![None; n];
        // Windowed confirmed-positive score per tenant: local ordinals of
        // recent confirmed positives, expired against the tenant's own
        // frame counter — the tenant-level twin of the model-admission
        // `ValueScore`. Frozen while shed: a stream is readmitted on the
        // score it was shed with.
        let mut value: Vec<VecDeque<usize>> = vec![VecDeque::new(); n];
        // Shed ordering key: lowest windowed confirmed-positive count,
        // then lowest priority, then youngest ordinal (`Reverse`) loses.
        type ShedKey = (usize, u32, Reverse<usize>);
        let shed_key = |t: usize, value: &[VecDeque<usize>]| -> ShedKey {
            (value[t].len(), tenants[t].priority, Reverse(t))
        };

        for f in &frames {
            let k = f.tenant;
            if !started[k] {
                started[k] = true;
                if admitted_count < capacity {
                    admitted[k] = true;
                    admitted_count += 1;
                    open[k] = Some(f.time);
                } else {
                    // Pool full: shed the lowest-value stream — the
                    // newcomer competes on equal terms and may lose.
                    let mut victim = k;
                    let mut best = shed_key(k, &value);
                    for (t, _) in admitted.iter().enumerate().filter(|(_, &a)| a) {
                        let key = shed_key(t, &value);
                        if key < best {
                            best = key;
                            victim = t;
                        }
                    }
                    ledger.events.push(TenantEvent {
                        time: f.time,
                        tenant: victim,
                        action: TenantAction::Shed,
                    });
                    if victim != k {
                        admitted[victim] = false;
                        if let Some(o) = open[victim].take() {
                            ledger.windows[victim].push((o, f.time));
                        }
                        admitted[k] = true;
                        open[k] = Some(f.time);
                    }
                }
            }
            if admitted[k] {
                while value[k].front().is_some_and(|&o| o + window <= f.ordinal) {
                    value[k].pop_front();
                }
                match verdict_of[k][f.ordinal] {
                    Some(v) => {
                        ledger.serviced[k] += 1;
                        ledger.latencies[k].push(v.completed_at.saturating_sub(v.arrival));
                        if v.flagged && v.truth_attack {
                            ledger.confirmed[k] += 1;
                            value[k].push_back(f.ordinal);
                        }
                    }
                    None => ledger.dropped[k] += 1,
                }
            } else {
                ledger.shed_frames[k] += 1;
            }
            processed[k] += 1;
            if processed[k] == total[k] && admitted[k] {
                // Stream complete: the slot frees; readmit the highest-
                // value shed stream that still has frames to serve.
                admitted[k] = false;
                admitted_count -= 1;
                if let Some(o) = open[k].take() {
                    ledger.windows[k].push((o, f.time));
                }
                let mut pick: Option<(ShedKey, usize)> = None;
                for t in 0..n {
                    if started[t] && !admitted[t] && processed[t] < total[t] {
                        let key = shed_key(t, &value);
                        let better = match &pick {
                            None => true,
                            Some((best, _)) => key > *best,
                        };
                        if better {
                            pick = Some((key, t));
                        }
                    }
                }
                if let Some((_, c)) = pick {
                    admitted[c] = true;
                    admitted_count += 1;
                    open[c] = Some(f.time);
                    ledger.events.push(TenantEvent {
                        time: f.time,
                        tenant: c,
                        action: TenantAction::Readmit,
                    });
                }
            }
        }
        ledger
    }

    /// Folds the ledger and the phase-1 outcomes into the final report,
    /// strictly in tenant-ordinal order.
    fn into_report(
        mut self,
        tenants: &[TenantStream],
        config: &PopulationConfig,
        outcomes: Vec<(ServeReport, Vec<Verdict>)>,
    ) -> PopulationReport {
        let mut tenant_reports = Vec::with_capacity(tenants.len());
        let mut pooled: Vec<SimTime> = Vec::new();
        for (k, (serve, _)) in outcomes.into_iter().enumerate() {
            let lats = std::mem::take(&mut self.latencies[k]);
            pooled.extend(&lats);
            tenant_reports.push(TenantReport {
                tenant: k,
                name: tenants[k].name.clone(),
                offered: self.offered[k],
                serviced: self.serviced[k],
                dropped: self.dropped[k],
                shed_frames: self.shed_frames[k],
                confirmed_positives: self.confirmed[k],
                latency: LatencyStats::from_unsorted(lats),
                windows: self.windows[k].len(),
                serve,
            });
        }

        let offered: usize = tenant_reports.iter().map(|t| t.offered).sum();
        let serviced: usize = tenant_reports.iter().map(|t| t.serviced).sum();
        let dropped: u64 = tenant_reports.iter().map(|t| t.dropped).sum();
        let shed_frames: usize = tenant_reports.iter().map(|t| t.shed_frames).sum();
        let confirmed_positives: usize = tenant_reports.iter().map(|t| t.confirmed_positives).sum();

        let span = self.last_arrival.saturating_sub(self.first_arrival);
        let offered_fps = if span > SimTime::ZERO {
            offered as f64 / span.as_secs_f64()
        } else {
            0.0
        };
        // Aggregate capacity mirrors the sharded merge: total served
        // frames over the slowest tenant's busy wall, defined only when
        // every tenant replay measured one.
        let mut max_busy = Duration::ZERO;
        let mut all_walled = true;
        for t in &tenant_reports {
            match t.serve.busy_wall() {
                Some(busy) => max_busy = max_busy.max(busy),
                None => all_walled = false,
            }
        }
        let sustained_fps = (all_walled && max_busy > Duration::ZERO)
            .then(|| serviced as f64 / max_busy.as_secs_f64());

        let telemetry = config.replay.telemetry.as_ref().map(|tcfg| {
            // Per-tenant telemetry folds in tenant-ordinal order, which
            // re-tags each tenant's spans with its ordinal — one trace
            // lane per tenant — then shifts them onto the population
            // clock by the tenant's stagger offset.
            let parts: Vec<TelemetryReport> = tenant_reports
                .iter()
                .filter_map(|t| t.serve.telemetry.clone())
                .collect();
            let mut merged = if parts.len() == tenant_reports.len() {
                TelemetryReport::merge(parts)
            } else {
                TelemetryReport::default()
            };
            for span in &mut merged.spans {
                let offset = config.stagger.mul_u64(u64::from(span.shard));
                span.start += offset;
                span.end += offset;
            }
            // The population layer's own spans: one residency window per
            // admitted segment (tenants in ordinal order), then the
            // zero-width admission decisions in event order.
            let probe = Probe::new(tcfg);
            for (k, windows) in self.windows.iter().enumerate() {
                let tid = u32::try_from(k).unwrap_or(u32::MAX);
                for &(start, end) in windows {
                    probe.record(tid, Stage::TenantWindow, start, end);
                }
            }
            for e in &self.events {
                let tid = u32::try_from(e.tenant).unwrap_or(u32::MAX);
                probe.record(tid, Stage::TenantAdmission, e.time, e.time);
            }
            let own = probe.take_report();
            merged.metrics.merge(&own.metrics);
            merged.spans.extend(own.spans);
            merged
        });

        pooled.sort_unstable();
        PopulationReport {
            latency: LatencyStats::from_sorted(&pooled),
            tenants: tenant_reports,
            offered,
            serviced,
            dropped,
            shed_frames,
            confirmed_positives,
            first_arrival: self.first_arrival,
            last_arrival: self.last_arrival,
            offered_fps,
            sustained_fps,
            events: self.events,
            telemetry,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canids_dataset::generator::{DatasetBuilder, TrafficConfig};

    fn quick_capture(seed: u64, ms: u64) -> Dataset {
        DatasetBuilder::new(TrafficConfig {
            duration: SimTime::from_millis(ms),
            seed,
            ..TrafficConfig::default()
        })
        .build()
    }

    #[test]
    fn registry_orders_tenants() {
        let mut pop = Population::new();
        assert!(pop.is_empty());
        assert_eq!(pop.push(TenantStream::new("a", quick_capture(1, 10))), 0);
        assert_eq!(pop.push(TenantStream::new("b", quick_capture(2, 10))), 1);
        assert_eq!(pop.len(), 2);
        assert_eq!(pop.tenants()[1].name, "b");
    }

    #[test]
    fn empty_population_serves_to_empty_report() {
        let pop = Population::new();
        let report = pop
            .serve(
                || {
                    Ok(crate::serve::SoftwareBackend::single(
                        canids_qnn::mlp::QuantMlp::new(canids_qnn::mlp::MlpConfig::paper_4bit())
                            .unwrap()
                            .export()
                            .unwrap(),
                    ))
                },
                &PopulationConfig::default(),
            )
            .unwrap();
        assert_eq!(report.offered, 0);
        assert!(report.tenants.is_empty());
        assert!(report.keeps_up());
    }

    #[test]
    fn admission_labels() {
        assert_eq!(TenantAdmission::AdmitAll.label(), "admit-all");
        assert_eq!(
            TenantAdmission::ShedLowestValueTenant {
                capacity: 0,
                window: 0
            }
            .label(),
            "shed-lowest-value-tenant"
        );
    }

    #[test]
    fn tenant_table_row_matches_header() {
        // Arity is checked by Table::push_row at runtime; pin it here so
        // a header edit cannot drift silently.
        assert_eq!(TenantReport::table_header().len(), 8);
    }
}
