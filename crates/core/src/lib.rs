//! End-to-end reproduction of *"Quantised Neural Network Accelerators
//! for Low-Power IDS in Automotive Networks"* (DATE 2023).
//!
//! This crate wires the substrates together into the paper's method:
//!
//! * [`pipeline`] — capture synthesis → QAT training → integer export →
//!   FINN-style compilation → ZCU104 deployment → evaluation,
//! * [`dse`] — the bit-width design-space exploration that selects 4-bit
//!   uniform quantisation,
//! * [`deploy`] — the N-detector deployment engine: per-model
//!   folding-budget allocation ([`deploy::DeploymentPlan`]), shared
//!   feature packing and pluggable ECU scheduling policies,
//! * [`stream`] — frame-at-a-time streaming evaluation
//!   ([`stream::StreamingEvaluator`]) and canned line-rate scenarios
//!   ([`stream::LineRateScenario`]) for the serving harness,
//! * [`fleet`] — the cross-ECU layer: one detector fleet sharded across
//!   heterogeneous boards ([`fleet::FleetPlan`]), gateway-coupled frame
//!   delivery, and admission policies that degrade gracefully under
//!   overload instead of dropping frames,
//! * [`net`] — the event-driven network runtime: a deterministic
//!   [`net::Scheduler`], multi-segment [`net::Topology`]s with finite
//!   gateway buffers ([`net::QueueDiscipline`]) and first-class fault
//!   events ([`net::Fault`]), selectable per replay through
//!   [`serve::FleetTransport::EventDriven`],
//! * [`serve`] — **the unified serving API**: one [`serve::ServeHarness`]
//!   over the software, single-ECU and fleet backends, with a typed
//!   per-frame verdict stream ([`serve::VerdictSink`]) and value-driven
//!   admission ([`serve::AdmissionPolicy::ShedLowestMeasuredValue`]),
//! * [`population`] — **the fourth serving tier** (software → ECU →
//!   fleet → population): many concurrent tenant capture streams
//!   ([`population::TenantStream`]) multiplexed onto a bounded backend
//!   pool with cross-tenant admission control
//!   ([`population::TenantAdmission`]) and a bit-deterministic
//!   [`population::PopulationReport`] merge,
//! * [`report`] — shared latency/energy statistics and paper-style
//!   ASCII tables for the benchmark harness,
//! * [`telemetry`] — the deterministic, sim-time-clocked observability
//!   layer: per-stage tracing spans ([`telemetry::Span`]), an integer
//!   metrics registry ([`telemetry::MetricsRegistry`]) and Chrome-trace /
//!   JSON exporters, opt-in per replay via
//!   [`serve::ReplayConfig::with_telemetry`].
//!
//! # Quickstart
//!
//! ```no_run
//! use canids_core::prelude::*;
//!
//! let report = IdsPipeline::new(PipelineConfig::dos()).run()?;
//! println!("Table I row (ours): {}", report.detector.test_cm);
//! println!("per-message latency: {}", report.ecu.mean_latency);
//! println!("board power: {:.2} W", report.ecu.mean_power_w);
//! # Ok::<(), canids_core::CoreError>(())
//! ```

pub mod deploy;
pub mod dse;
pub mod error;
pub mod fleet;
pub mod net;
mod par;
pub mod pipeline;
pub mod population;
pub mod report;
pub mod serve;
pub mod stream;
pub mod telemetry;

pub use deploy::{
    deploy_multi_ids, DeploymentPlan, DetectorBundle, ModelPlan, MultiIdsDeployment, PlanConfig,
};
pub use dse::{sweep_bitwidths, DsePoint, DseReport};
pub use error::CoreError;
pub use fleet::{AdmissionPolicy, BoardSpec, FleetConfig, FleetDeployment, FleetPlan};
pub use net::{
    DropReason, Fault, FleetNet, GatewayLoad, NetConfig, NetOutcome, NetSim, QueueDiscipline,
    Topology,
};
pub use pipeline::{IdsPipeline, PipelineConfig, PipelineReport, TrainedDetector};
pub use population::{
    Population, PopulationConfig, PopulationReport, TenantAction, TenantAdmission, TenantEvent,
    TenantReport, TenantStream,
};
pub use report::{pct, pct_of, pct_opt, EnergyStats, LatencyStats, Table};
pub use serve::{
    EcuBackend, FleetBackend, FleetTransport, Pacing, ReplayConfig, ServeBackend, ServeHarness,
    ServeReport, ServeScenario, ShardWorkers, SoftwareBackend, Verdict, VerdictSink,
};
pub use stream::{
    LineRateScenario, MultiStreamVerdict, MultiStreamingEvaluator, StagedNanos, StreamVerdict,
    StreamingEvaluator,
};
pub use telemetry::{
    MetricsRegistry, Probe, Span, Stage, StageStats, TelemetryConfig, TelemetryReport, WallClock,
};

/// Convenience re-exports spanning the whole stack.
pub mod prelude {
    pub use crate::deploy::{
        deploy_multi_ids, DeploymentPlan, DetectorBundle, MultiIdsDeployment, PlanConfig,
    };
    pub use crate::dse::{sweep_bitwidths, DseReport};
    pub use crate::error::CoreError;
    pub use crate::fleet::{AdmissionPolicy, BoardSpec, FleetConfig, FleetDeployment, FleetPlan};
    pub use crate::net::{
        DropReason, Fault, FleetNet, GatewayLoad, NetConfig, NetOutcome, QueueDiscipline,
    };
    pub use crate::pipeline::{IdsPipeline, PipelineConfig, PipelineReport, TrainedDetector};
    pub use crate::population::{
        Population, PopulationConfig, PopulationReport, TenantAction, TenantAdmission, TenantEvent,
        TenantReport, TenantStream,
    };
    pub use crate::report::{pct, pct_of, pct_opt, EnergyStats, LatencyStats, Table};
    pub use crate::serve::{
        CaptureSource, EcuBackend, FleetBackend, FleetTransport, Pacing, ReplayConfig,
        ServeBackend, ServeHarness, ServeReport, ServeScenario, ShardWorkers, SoftwareBackend,
        Verdict, VerdictSink,
    };
    pub use crate::stream::{
        LineRateScenario, MultiStreamingEvaluator, StreamVerdict, StreamingEvaluator,
    };
    pub use crate::telemetry::{
        MetricsRegistry, Probe, Span, Stage, TelemetryConfig, TelemetryReport, WallClock,
    };
    pub use canids_baselines::prelude::*;
    pub use canids_can::prelude::*;
    pub use canids_dataflow::prelude::*;
    pub use canids_dataset::prelude::*;
    pub use canids_qnn::prelude::*;
    pub use canids_soc::prelude::*;
}
