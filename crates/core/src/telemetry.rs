//! Deterministic, sim-time-clocked observability for the serving stack.
//!
//! Everything in this module is clocked on [`SimTime`] — the virtual bus
//! clock — never the host's wall clock, so a replay instrumented with
//! telemetry produces the **bit-identical** trace and metrics snapshot on
//! every run and for any worker count (per-shard registries merge in
//! strict shard order, exactly like `merge_sharded` reports). The one
//! audited exception is [`WallClock`]: the single workspace gate through
//! which wall-time reads are allowed (the software backend reports
//! *measured host latency* by contract, and the bench harness times real
//! kernels).
//!
//! Three layers:
//!
//! 1. **Spans** — [`Span`] records a `[start, end)` interval on the
//!    virtual clock for one pipeline [`Stage`] (featurise → pack → infer
//!    on the software path, DMA windows on the ECU path, gateway hops in
//!    the fleet network, admission decisions in the harness).
//! 2. **Metrics** — [`MetricsRegistry`] holds typed integer counters and
//!    fixed power-of-two-bucket histograms keyed by static interned
//!    names. All-integer state makes bit-determinism trivial.
//! 3. **Exporters** — [`TelemetryReport::to_chrome_trace`] emits
//!    Chrome-trace (`trace_events`) JSON loadable in `about:tracing` /
//!    Perfetto, and [`TelemetryReport::metrics_json`] a flat snapshot.
//!
//! Telemetry is opt-in per replay via
//! `ReplayConfig::with_telemetry(TelemetryConfig::default())` and is
//! provably free when disabled: with telemetry off every `ServeReport`
//! field is bit-identical to an uninstrumented build.
//!
//! ```
//! use canids_core::telemetry::{Probe, Stage, TelemetryConfig, TelemetryReport};
//! use canids_can::time::SimTime;
//!
//! let probe = Probe::new(&TelemetryConfig::default());
//! probe.record(0, Stage::Infer, SimTime::from_micros(10), SimTime::from_micros(14));
//! let report = probe.take_report();
//! assert_eq!(report.spans.len(), 1);
//! assert_eq!(report.stage_stats(Stage::Infer).count, 1);
//! ```

use canids_can::time::SimTime;
use std::cell::RefCell;
use std::fmt::Write as _;
use std::rc::Rc;

/// One pipeline stage in the span taxonomy.
///
/// Stage names are a static interned table: every span and histogram is
/// keyed by one of these variants, so exporters never carry owned
/// strings and merged registries cannot drift on key order.
///
/// ```
/// use canids_core::telemetry::Stage;
///
/// assert_eq!(Stage::DmaWindow.name(), "dma_window");
/// assert_eq!(Stage::from_name("infer"), Some(Stage::Infer));
/// assert_eq!(Stage::ALL.len(), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Feature extraction over a raw CAN frame (software hot path).
    Featurise,
    /// Quantise-and-pack of the feature vector into integer levels.
    Pack,
    /// Forward pass through the quantised MLP (or the simulated
    /// accelerator's service interval on the ECU path).
    Infer,
    /// One buffered DMA batch window on the simulated ECU: from service
    /// start of the window to completion of the whole batch.
    DmaWindow,
    /// Store-and-forward hop through a fleet gateway: frame timestamp at
    /// the source segment to delivery on the destination bus.
    GatewayHop,
    /// An admission-control decision (shed / readmit / migrate) in the
    /// serve harness; zero-width, stamped at decision time.
    Admission,
    /// A cross-tenant admission decision (tenant shed / readmit) in the
    /// population layer; zero-width, stamped at decision time.
    TenantAdmission,
    /// One admitted residency window of a tenant stream in the
    /// population layer: from (re)admission to shed or stream end.
    TenantWindow,
}

impl Stage {
    /// Every stage, in the canonical (merge and export) order.
    pub const ALL: [Stage; 8] = [
        Stage::Featurise,
        Stage::Pack,
        Stage::Infer,
        Stage::DmaWindow,
        Stage::GatewayHop,
        Stage::Admission,
        Stage::TenantAdmission,
        Stage::TenantWindow,
    ];

    /// The static interned name for this stage.
    ///
    /// ```
    /// assert_eq!(canids_core::telemetry::Stage::GatewayHop.name(), "gateway_hop");
    /// ```
    pub const fn name(self) -> &'static str {
        match self {
            Stage::Featurise => "featurise",
            Stage::Pack => "pack",
            Stage::Infer => "infer",
            Stage::DmaWindow => "dma_window",
            Stage::GatewayHop => "gateway_hop",
            Stage::Admission => "admission",
            Stage::TenantAdmission => "tenant_admission",
            Stage::TenantWindow => "tenant_window",
        }
    }

    /// Position in [`Stage::ALL`]; indexes the per-stage histogram table.
    pub const fn index(self) -> usize {
        match self {
            Stage::Featurise => 0,
            Stage::Pack => 1,
            Stage::Infer => 2,
            Stage::DmaWindow => 3,
            Stage::GatewayHop => 4,
            Stage::Admission => 5,
            Stage::TenantAdmission => 6,
            Stage::TenantWindow => 7,
        }
    }

    /// Reverse lookup from an interned name (e.g. a stage string carried
    /// by a lower layer that cannot depend on this crate).
    ///
    /// ```
    /// use canids_core::telemetry::Stage;
    /// assert_eq!(Stage::from_name("pack"), Some(Stage::Pack));
    /// assert_eq!(Stage::from_name("nope"), None);
    /// ```
    pub fn from_name(name: &str) -> Option<Stage> {
        Stage::ALL.into_iter().find(|s| s.name() == name)
    }
}

/// A typed counter slot in the [`MetricsRegistry`].
///
/// ```
/// use canids_core::telemetry::Counter;
/// assert_eq!(Counter::FramesDropped.name(), "frames_dropped");
/// assert_eq!(Counter::ALL.len(), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Counter {
    /// Frames offered to the harness by the paced capture replay.
    FramesOffered,
    /// Frames that produced a verdict.
    FramesServiced,
    /// Frames lost to FIFO overflow, admission, or network drops.
    FramesDropped,
    /// Models shed by the admission controller.
    AdmissionShed,
    /// Models re-admitted after backlog recovered below the watermark.
    AdmissionReadmit,
    /// Models migrated to another board.
    AdmissionMigrate,
    /// Spans discarded because the [`TelemetryConfig::span_cap`] was hit
    /// (histograms still observe every interval).
    SpansDropped,
}

impl Counter {
    /// Every counter, in the canonical (merge and export) order.
    pub const ALL: [Counter; 7] = [
        Counter::FramesOffered,
        Counter::FramesServiced,
        Counter::FramesDropped,
        Counter::AdmissionShed,
        Counter::AdmissionReadmit,
        Counter::AdmissionMigrate,
        Counter::SpansDropped,
    ];

    /// The static interned name for this counter.
    pub const fn name(self) -> &'static str {
        match self {
            Counter::FramesOffered => "frames_offered",
            Counter::FramesServiced => "frames_serviced",
            Counter::FramesDropped => "frames_dropped",
            Counter::AdmissionShed => "admission_shed",
            Counter::AdmissionReadmit => "admission_readmit",
            Counter::AdmissionMigrate => "admission_migrate",
            Counter::SpansDropped => "spans_dropped",
        }
    }

    /// Position in [`Counter::ALL`]; indexes the counter table.
    pub const fn index(self) -> usize {
        match self {
            Counter::FramesOffered => 0,
            Counter::FramesServiced => 1,
            Counter::FramesDropped => 2,
            Counter::AdmissionShed => 3,
            Counter::AdmissionReadmit => 4,
            Counter::AdmissionMigrate => 5,
            Counter::SpansDropped => 6,
        }
    }
}

/// A closed `[start, end)` interval on the virtual clock, attributed to
/// one [`Stage`] and the shard (serving lane / board) that produced it.
///
/// ```
/// use canids_core::telemetry::{Span, Stage};
/// use canids_can::time::SimTime;
///
/// let span = Span {
///     stage: Stage::Featurise,
///     start: SimTime::from_micros(5),
///     end: SimTime::from_micros(7),
///     shard: 0,
/// };
/// assert_eq!(span.duration().as_nanos(), 2_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Which pipeline stage this interval covers.
    pub stage: Stage,
    /// Sim-time at which the stage began.
    pub start: SimTime,
    /// Sim-time at which the stage completed (`>= start`).
    pub end: SimTime,
    /// Serving lane / board index that produced the span. Re-tagged with
    /// the owning shard replica by [`TelemetryReport::merge`].
    pub shard: u32,
}

impl Span {
    /// `end - start`, saturating at zero.
    pub fn duration(&self) -> SimTime {
        self.end.saturating_sub(self.start)
    }
}

/// Number of histogram buckets: bucket `i >= 1` counts durations in
/// `[2^(i-1), 2^i)` nanoseconds, bucket 0 counts zero-length intervals,
/// and the last bucket absorbs everything `>= 2^63` ns.
const HIST_BUCKETS: usize = 65;

/// A fixed power-of-two-bucket latency histogram over nanosecond
/// durations. All-integer state (bucket counts, total count, sum, max)
/// makes merged snapshots bit-deterministic by construction.
///
/// ```
/// use canids_core::telemetry::Histogram;
///
/// let mut h = Histogram::default();
/// h.observe(1_500);
/// h.observe(1_500);
/// h.observe(3_000);
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.sum_ns(), 6_000);
/// assert_eq!(h.max_ns(), 3_000);
/// assert!((h.mean_ns() - 2_000.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum_ns: u64,
    max_ns: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }
}

impl Histogram {
    /// Bucket index for a duration: 0 for zero, else `64 - clz(ns)` so
    /// bucket `i` covers `[2^(i-1), 2^i)` ns.
    fn bucket(ns: u64) -> usize {
        if ns == 0 {
            0
        } else {
            (64 - ns.leading_zeros()) as usize
        }
    }

    /// Record one duration in nanoseconds.
    pub fn observe(&mut self, ns: u64) {
        self.buckets[Self::bucket(ns)] += 1;
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed durations in nanoseconds (saturating).
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns
    }

    /// Largest observed duration in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Arithmetic mean in nanoseconds (0.0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Non-empty buckets as `(index, count)` pairs in index order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }

    /// Fold another histogram into this one (element-wise addition).
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

/// Aggregate statistics for one stage, read out of its histogram.
///
/// ```
/// use canids_core::telemetry::{Probe, Stage, TelemetryConfig};
/// use canids_can::time::SimTime;
///
/// let probe = Probe::new(&TelemetryConfig::default());
/// probe.record(0, Stage::Pack, SimTime::ZERO, SimTime::from_nanos(800));
/// let stats = probe.take_report().stage_stats(Stage::Pack);
/// assert_eq!(stats.count, 1);
/// assert_eq!(stats.max_ns, 800);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageStats {
    /// Number of spans observed for the stage.
    pub count: u64,
    /// Sum of span durations in nanoseconds.
    pub total_ns: u64,
    /// Mean span duration in nanoseconds (0.0 when empty).
    pub mean_ns: f64,
    /// Largest span duration in nanoseconds.
    pub max_ns: u64,
}

/// Typed integer counters plus one fixed-bucket [`Histogram`] per
/// [`Stage`], keyed by the static interned name tables. Per-shard
/// registries are merged in strict shard order by
/// [`TelemetryReport::merge`], so a sharded replay's snapshot is
/// bit-identical for any worker count.
///
/// ```
/// use canids_core::telemetry::{Counter, MetricsRegistry, Stage};
///
/// let mut m = MetricsRegistry::default();
/// m.add(Counter::FramesOffered, 10);
/// m.observe(Stage::Infer, 2_000);
/// assert_eq!(m.counter(Counter::FramesOffered), 10);
/// assert_eq!(m.stage(Stage::Infer).count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsRegistry {
    counters: [u64; Counter::ALL.len()],
    stages: [Histogram; Stage::ALL.len()],
}

impl MetricsRegistry {
    /// Increment a counter by one.
    pub fn inc(&mut self, c: Counter) {
        self.counters[c.index()] += 1;
    }

    /// Add `n` to a counter.
    pub fn add(&mut self, c: Counter, n: u64) {
        self.counters[c.index()] += n;
    }

    /// Current value of a counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c.index()]
    }

    /// Record a duration (ns) in the stage's histogram.
    pub fn observe(&mut self, stage: Stage, ns: u64) {
        self.stages[stage.index()].observe(ns);
    }

    /// The histogram backing one stage.
    pub fn stage(&self, stage: Stage) -> &Histogram {
        &self.stages[stage.index()]
    }

    /// Fold another registry into this one. Counters and histograms are
    /// element-wise sums, so folding shard registries in strict shard
    /// order reproduces the single-shard registry bit-for-bit.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (c, o) in self.counters.iter_mut().zip(other.counters.iter()) {
            *c += o;
        }
        for (h, o) in self.stages.iter_mut().zip(other.stages.iter()) {
            h.merge(o);
        }
    }

    /// A deterministic one-line fingerprint over every counter, bucket,
    /// sum, and max — equality of fingerprints is equality of snapshots.
    ///
    /// ```
    /// use canids_core::telemetry::MetricsRegistry;
    /// let (a, b) = (MetricsRegistry::default(), MetricsRegistry::default());
    /// assert_eq!(a.fingerprint(), b.fingerprint());
    /// ```
    pub fn fingerprint(&self) -> String {
        let mut out = String::new();
        for c in Counter::ALL {
            let _ = write!(out, "{}={};", c.name(), self.counter(c));
        }
        for s in Stage::ALL {
            let h = self.stage(s);
            let _ = write!(
                out,
                "|{}:n={},sum={},max={},b=",
                s.name(),
                h.count(),
                h.sum_ns(),
                h.max_ns()
            );
            for (i, c) in h.nonzero_buckets() {
                let _ = write!(out, "{i}.{c},");
            }
        }
        out
    }

    /// Flat metrics snapshot as a JSON object string: every counter by
    /// name, then per-stage `{count, sum_ns, max_ns, buckets}` where
    /// `buckets` lists non-empty `[index, count]` pairs.
    ///
    /// ```
    /// let m = canids_core::telemetry::MetricsRegistry::default();
    /// assert!(m.to_json().contains("\"frames_offered\""));
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, c) in Counter::ALL.into_iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{}\": {}", c.name(), self.counter(c));
        }
        out.push_str("\n  },\n  \"stages\": {");
        for (i, s) in Stage::ALL.into_iter().enumerate() {
            let h = self.stage(s);
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    \"{}\": {{ \"count\": {}, \"sum_ns\": {}, \"max_ns\": {}, \"buckets\": [",
                s.name(),
                h.count(),
                h.sum_ns(),
                h.max_ns()
            );
            for (j, (idx, c)) in h.nonzero_buckets().enumerate() {
                let sep = if j == 0 { "" } else { ", " };
                let _ = write!(out, "{sep}[{idx}, {c}]");
            }
            out.push_str("] }");
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

/// Configuration for a replay's telemetry capture, passed to
/// `ReplayConfig::with_telemetry`.
///
/// ```
/// use canids_core::telemetry::TelemetryConfig;
///
/// let cfg = TelemetryConfig::default().with_span_cap(1024);
/// assert!(cfg.spans);
/// assert_eq!(cfg.span_cap, 1024);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Keep individual [`Span`] records (metrics are always collected).
    pub spans: bool,
    /// Maximum retained spans per probe; beyond the cap spans are
    /// counted in [`Counter::SpansDropped`] but histograms still observe
    /// every interval, so metrics stay exact.
    pub span_cap: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            spans: true,
            span_cap: 1 << 16,
        }
    }
}

impl TelemetryConfig {
    /// Toggle span retention (metrics-only capture when `false`).
    pub fn with_spans(mut self, spans: bool) -> Self {
        self.spans = spans;
        self
    }

    /// Cap the retained span count.
    pub fn with_span_cap(mut self, cap: usize) -> Self {
        self.span_cap = cap;
        self
    }
}

struct ProbeInner {
    spans: Vec<Span>,
    metrics: MetricsRegistry,
    keep_spans: bool,
    span_cap: usize,
}

/// A cloneable handle through which sessions record spans and counters
/// during a replay. Cloning is cheap (shared interior), which lets the
/// handle survive `ServeSession::finish(self)` consuming the session: the
/// harness keeps one clone and drains it after the session is gone.
///
/// ```
/// use canids_core::telemetry::{Counter, Probe, Stage, TelemetryConfig};
/// use canids_can::time::SimTime;
///
/// let probe = Probe::new(&TelemetryConfig::default());
/// let session_side = probe.clone();
/// session_side.record(1, Stage::Infer, SimTime::ZERO, SimTime::from_nanos(5));
/// session_side.inc(Counter::FramesServiced);
/// let report = probe.take_report();
/// assert_eq!(report.spans[0].shard, 1);
/// assert_eq!(report.metrics.counter(Counter::FramesServiced), 1);
/// ```
#[derive(Clone)]
pub struct Probe {
    inner: Rc<RefCell<ProbeInner>>,
}

impl std::fmt::Debug for Probe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("Probe")
            .field("spans", &inner.spans.len())
            .field("keep_spans", &inner.keep_spans)
            .finish()
    }
}

impl Probe {
    /// A fresh probe honouring the given capture configuration.
    pub fn new(config: &TelemetryConfig) -> Probe {
        Probe {
            inner: Rc::new(RefCell::new(ProbeInner {
                spans: Vec::new(),
                metrics: MetricsRegistry::default(),
                keep_spans: config.spans,
                span_cap: config.span_cap,
            })),
        }
    }

    /// Record one stage interval: the stage histogram always observes
    /// the duration; the individual span is retained while under the
    /// configured cap.
    pub fn record(&self, shard: u32, stage: Stage, start: SimTime, end: SimTime) {
        let mut inner = self.inner.borrow_mut();
        let ns = end.saturating_sub(start).as_nanos();
        inner.metrics.observe(stage, ns);
        if inner.keep_spans {
            if inner.spans.len() < inner.span_cap {
                inner.spans.push(Span {
                    stage,
                    start,
                    end,
                    shard,
                });
            } else {
                inner.metrics.inc(Counter::SpansDropped);
            }
        }
    }

    /// Increment a counter by one.
    pub fn inc(&self, c: Counter) {
        self.inner.borrow_mut().metrics.inc(c);
    }

    /// Add `n` to a counter.
    pub fn add(&self, c: Counter, n: u64) {
        self.inner.borrow_mut().metrics.add(c, n);
    }

    /// Drain everything recorded so far into a [`TelemetryReport`],
    /// resetting the probe.
    pub fn take_report(&self) -> TelemetryReport {
        let mut inner = self.inner.borrow_mut();
        TelemetryReport {
            spans: std::mem::take(&mut inner.spans),
            metrics: std::mem::take(&mut inner.metrics),
        }
    }
}

/// The telemetry captured by one replay: retained spans plus the metrics
/// registry. Attached to `ServeReport::telemetry` when the replay was
/// configured with `with_telemetry`.
///
/// ```
/// use canids_core::telemetry::{Probe, Stage, TelemetryConfig, TelemetryReport};
/// use canids_can::time::SimTime;
///
/// let probe = Probe::new(&TelemetryConfig::default());
/// probe.record(0, Stage::Infer, SimTime::ZERO, SimTime::from_micros(3));
/// let shard0 = probe.take_report();
/// probe.record(0, Stage::Infer, SimTime::ZERO, SimTime::from_micros(5));
/// let shard1 = probe.take_report();
///
/// let merged = TelemetryReport::merge(vec![shard0, shard1]);
/// assert_eq!(merged.spans.len(), 2);
/// assert_eq!(merged.spans[1].shard, 1); // re-tagged with its replica
/// assert!(merged.to_chrome_trace().contains("\"traceEvents\""));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TelemetryReport {
    /// Retained spans in recording order (merge keeps strict shard
    /// order: all of shard 0's spans, then shard 1's, …).
    pub spans: Vec<Span>,
    /// The integer metrics snapshot.
    pub metrics: MetricsRegistry,
}

impl TelemetryReport {
    /// Fold per-shard reports in **strict shard order**; spans are
    /// re-tagged with their shard replica index so a merged Chrome trace
    /// shows one track per serving lane.
    pub fn merge(parts: Vec<TelemetryReport>) -> TelemetryReport {
        let mut merged = TelemetryReport::default();
        for (s, part) in parts.into_iter().enumerate() {
            merged.metrics.merge(&part.metrics);
            merged.spans.extend(part.spans.into_iter().map(|mut span| {
                span.shard = s as u32;
                span
            }));
        }
        merged
    }

    /// Aggregate statistics for one stage, read from its histogram (so
    /// they are exact even when the span cap truncated retention).
    pub fn stage_stats(&self, stage: Stage) -> StageStats {
        let h = self.metrics.stage(stage);
        StageStats {
            count: h.count(),
            total_ns: h.sum_ns(),
            mean_ns: h.mean_ns(),
            max_ns: h.max_ns(),
        }
    }

    /// Deterministic fingerprint over the metrics snapshot plus the
    /// retained span stream.
    pub fn fingerprint(&self) -> String {
        let mut out = self.metrics.fingerprint();
        let _ = write!(out, "|spans={}", self.spans.len());
        for s in &self.spans {
            let _ = write!(
                out,
                "|{}@{}:{}-{}",
                s.stage.name(),
                s.shard,
                s.start.as_nanos(),
                s.end.as_nanos()
            );
        }
        out
    }

    /// Chrome-trace (`trace_events`) JSON: one complete (`"ph": "X"`)
    /// event per span, timestamps in microseconds on the virtual clock,
    /// one `tid` track per shard, plus one `thread_name` metadata event
    /// per track — tracks carrying population tenant spans
    /// ([`Stage::TenantAdmission`] / [`Stage::TenantWindow`]) are named
    /// `tenant N`, all others `lane N`, so a population run renders as
    /// per-tenant lanes. Load the output in `about:tracing` or Perfetto.
    ///
    /// ```
    /// let r = canids_core::telemetry::TelemetryReport::default();
    /// assert!(r.to_chrome_trace().starts_with("{\"traceEvents\":["));
    /// ```
    pub fn to_chrome_trace(&self) -> String {
        fn micros(t: SimTime) -> String {
            let ns = t.as_nanos();
            format!("{}.{:03}", ns / 1_000, ns % 1_000)
        }
        let mut out = String::from("{\"traceEvents\":[");
        for (i, s) in self.spans.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n{{\"name\":\"{}\",\"cat\":\"canids\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}}}",
                s.stage.name(),
                micros(s.start),
                micros(s.duration()),
                s.shard + 1
            );
        }
        // Thread-name metadata, in ascending tid order (sorted + deduped
        // Vec, so the event order is deterministic).
        let mut shards: Vec<u32> = self.spans.iter().map(|s| s.shard).collect();
        shards.sort_unstable();
        shards.dedup();
        let mut tenant_shards: Vec<u32> = self
            .spans
            .iter()
            .filter(|s| matches!(s.stage, Stage::TenantAdmission | Stage::TenantWindow))
            .map(|s| s.shard)
            .collect();
        tenant_shards.sort_unstable();
        tenant_shards.dedup();
        for sh in &shards {
            let label = if tenant_shards.binary_search(sh).is_ok() {
                "tenant"
            } else {
                "lane"
            };
            let _ = write!(
                out,
                ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":\"{label} {sh}\"}}}}",
                sh + 1
            );
        }
        out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        out
    }

    /// Flat metrics JSON snapshot (see [`MetricsRegistry::to_json`]).
    pub fn metrics_json(&self) -> String {
        self.metrics.to_json()
    }
}

/// The workspace's single audited gate for wall-clock reads.
///
/// Sim-clocked code must never read the host clock (`canids_lint`'s
/// `wallclock-in-sim` rule enforces this); the two legitimate consumers —
/// the software backend, which reports *measured host latency* by
/// contract, and the bench harness, which times real kernels — route
/// through this shim so the audit surface is exactly one allow site.
///
/// ```
/// use canids_core::telemetry::WallClock;
///
/// let t0 = WallClock::start();
/// let ns = t0.elapsed_nanos();
/// assert!(ns < u64::MAX);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct WallClock;

impl WallClock {
    /// Start a wall-clock measurement.
    pub fn start() -> WallInstant {
        // lint:allow(wallclock-in-sim): the single audited wall-time gate — software-backend measured latency and bench timing route through here
        WallInstant(std::time::Instant::now())
    }
}

/// An opaque wall-clock anchor returned by [`WallClock::start`].
///
/// ```
/// let t0 = canids_core::telemetry::WallClock::start();
/// assert!(t0.elapsed() >= std::time::Duration::ZERO);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct WallInstant(std::time::Instant);

impl WallInstant {
    /// Elapsed wall time since the anchor.
    pub fn elapsed(&self) -> std::time::Duration {
        self.0.elapsed()
    }

    /// Elapsed wall time in nanoseconds, saturating at `u64::MAX`.
    pub fn elapsed_nanos(&self) -> u64 {
        u64::try_from(self.0.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_round_trip() {
        for s in Stage::ALL {
            assert_eq!(Stage::from_name(s.name()), Some(s));
            assert_eq!(Stage::ALL[s.index()], s);
        }
        for c in Counter::ALL {
            assert_eq!(Counter::ALL[c.index()], c);
        }
    }

    #[test]
    fn histogram_buckets_are_power_of_two() {
        assert_eq!(Histogram::bucket(0), 0);
        assert_eq!(Histogram::bucket(1), 1);
        assert_eq!(Histogram::bucket(2), 2);
        assert_eq!(Histogram::bucket(3), 2);
        assert_eq!(Histogram::bucket(4), 3);
        assert_eq!(Histogram::bucket(u64::MAX), 64);
        let mut h = Histogram::default();
        h.observe(3);
        h.observe(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max_ns(), u64::MAX);
        assert_eq!(h.sum_ns(), u64::MAX); // saturating
    }

    #[test]
    fn span_cap_drops_spans_but_keeps_metrics_exact() {
        let probe = Probe::new(&TelemetryConfig::default().with_span_cap(2));
        for i in 0..5u64 {
            probe.record(0, Stage::Infer, SimTime::ZERO, SimTime::from_nanos(100 + i));
        }
        let report = probe.take_report();
        assert_eq!(report.spans.len(), 2);
        assert_eq!(report.metrics.counter(Counter::SpansDropped), 3);
        assert_eq!(report.stage_stats(Stage::Infer).count, 5);
    }

    #[test]
    fn metrics_only_capture_retains_no_spans() {
        let probe = Probe::new(&TelemetryConfig::default().with_spans(false));
        probe.record(0, Stage::Pack, SimTime::ZERO, SimTime::from_nanos(10));
        let report = probe.take_report();
        assert!(report.spans.is_empty());
        assert_eq!(report.metrics.counter(Counter::SpansDropped), 0);
        assert_eq!(report.stage_stats(Stage::Pack).count, 1);
    }

    #[test]
    fn merge_is_strict_shard_order_and_retags() {
        let probe = Probe::new(&TelemetryConfig::default());
        probe.record(7, Stage::Infer, SimTime::ZERO, SimTime::from_nanos(10));
        let a = probe.take_report();
        probe.record(9, Stage::Infer, SimTime::ZERO, SimTime::from_nanos(20));
        probe.inc(Counter::FramesDropped);
        let b = probe.take_report();

        let ab = TelemetryReport::merge(vec![a.clone(), b.clone()]);
        assert_eq!(ab.spans[0].shard, 0);
        assert_eq!(ab.spans[1].shard, 1);
        assert_eq!(ab.metrics.counter(Counter::FramesDropped), 1);
        assert_eq!(ab.stage_stats(Stage::Infer).count, 2);
        assert_eq!(ab.stage_stats(Stage::Infer).total_ns, 30);

        // Merging [a, b] twice yields identical fingerprints.
        let ab2 = TelemetryReport::merge(vec![a, b]);
        assert_eq!(ab.fingerprint(), ab2.fingerprint());
    }

    #[test]
    fn chrome_trace_shape() {
        let probe = Probe::new(&TelemetryConfig::default());
        probe.record(
            2,
            Stage::GatewayHop,
            SimTime::from_nanos(1_500),
            SimTime::from_nanos(4_750),
        );
        let trace = probe.take_report().to_chrome_trace();
        assert!(trace.starts_with("{\"traceEvents\":["));
        assert!(trace.contains("\"name\":\"gateway_hop\""));
        assert!(trace.contains("\"ph\":\"X\""));
        assert!(trace.contains("\"ts\":1.500"));
        assert!(trace.contains("\"dur\":3.250"));
        assert!(trace.contains("\"tid\":3"));
        // A plain serving span names its track "lane N".
        assert!(trace.contains("\"ph\":\"M\""));
        assert!(trace.contains("\"name\":\"lane 2\""));
    }

    #[test]
    fn chrome_trace_names_tenant_tracks() {
        let probe = Probe::new(&TelemetryConfig::default());
        // Shard 0 carries a tenant window (population lane); shard 1 is a
        // plain serving lane.
        probe.record(
            0,
            Stage::TenantWindow,
            SimTime::ZERO,
            SimTime::from_micros(50),
        );
        probe.record(0, Stage::Infer, SimTime::ZERO, SimTime::from_micros(1));
        probe.record(1, Stage::Infer, SimTime::ZERO, SimTime::from_micros(1));
        let trace = probe.take_report().to_chrome_trace();
        assert!(trace.contains("\"name\":\"tenant_window\""));
        assert!(trace.contains("\"tid\":1,\"args\":{\"name\":\"tenant 0\"}"));
        assert!(trace.contains("\"tid\":2,\"args\":{\"name\":\"lane 1\"}"));
    }

    #[test]
    fn metrics_json_lists_every_name() {
        let json = MetricsRegistry::default().to_json();
        for c in Counter::ALL {
            assert!(json.contains(&format!("\"{}\"", c.name())));
        }
        for s in Stage::ALL {
            assert!(json.contains(&format!("\"{}\"", s.name())));
        }
    }

    #[test]
    fn wallclock_shim_measures_forward() {
        let t0 = WallClock::start();
        let d = t0.elapsed();
        assert!(t0.elapsed_nanos() >= d.as_nanos() as u64 || d.is_zero());
    }
}
