//! The unified serving API: one [`ServeHarness`] over every serving
//! substrate this crate models.
//!
//! Before this module, the repo carried three parallel, copy-diverged
//! replay surfaces — `replay_line_rate` (software),
//! `multi_line_rate` (single N-detector ECU) and `fleet_line_rate`
//! (cross-ECU fleet) — each with its own configuration struct, report
//! type and percentile maths. All three are gone; this module is the
//! one serving surface:
//!
//! * [`ServeBackend`] — the substrate trait, with three
//!   implementations: [`SoftwareBackend`] (host-measured
//!   [`crate::stream::StreamingEvaluator`] serving), [`EcuBackend`]
//!   (one simulated N-detector ECU via
//!   [`crate::deploy::MultiIdsDeployment`] + `EcuStream`) and
//!   [`FleetBackend`] ([`crate::fleet::FleetDeployment`] + gateway
//!   forwarding).
//! * [`ServeHarness`] — paces one capture through a backend under a
//!   unified [`ReplayConfig`] ([`Pacing`], [`SchedPolicy`],
//!   [`AdmissionPolicy`], [`OverloadThresholds`]) and aggregates one
//!   composable [`ServeReport`] (shared
//!   [`LatencyStats`]/[`EnergyStats`]/drop accounting, optional
//!   per-model and per-board sections, admission event log).
//!   [`ServeHarness::sweep`] replays several [`ServeScenario`]s on
//!   scoped threads — one sweep entry point for every backend.
//! * [`Verdict`] / [`VerdictSink`] — the typed per-frame verdict
//!   stream every replay emits. Verdicts carry per-model flag masks and
//!   ground truth, which is what makes **value-driven admission**
//!   possible: [`AdmissionPolicy::ShedLowestMeasuredValue`] sheds the
//!   model with the lowest *measured* detection contribution (windowed
//!   confirmed-positive count from the verdict stream) instead of the
//!   lowest static priority — a never-firing model is shed first even
//!   if someone labelled it important.
//!
//! Admission governance (overload hysteresis, shed/readmit/migrate)
//! lives in the harness, not in any one backend, so every substrate that
//! exposes model activation gets graceful degradation for free.

use std::collections::{BTreeMap, VecDeque};
use std::time::Duration;

use canids_can::frame::CanFrame;
use canids_can::gateway::SegmentForwarder;
use canids_can::time::SimTime;
use canids_can::timing::Bitrate;
use canids_dataset::features::{FrameEncoder, IdBitsPayloadBits};
use canids_dataset::generator::{Dataset, DatasetBuilder, TrafficConfig};
use canids_dataset::record::LabeledFrame;
use canids_dataset::stream::paced_records;
use canids_qnn::export::IntegerMlp;
use canids_qnn::metrics::ConfusionMatrix;
use canids_soc::ecu::{EcuConfig, EcuStream, IdsEcu, SchedPolicy, ServiceQueue};

use crate::deploy::MultiIdsDeployment;
use crate::error::CoreError;
use crate::fleet::{FleetDeployment, Slot};
use crate::net::{FleetNet, GatewayLoad, NetConfig, NetOutcome};
use crate::report::{EnergyStats, LatencyStats};
use crate::stream::{StagedNanos, StreamVerdict, StreamingEvaluator};
use crate::telemetry::{Counter, Probe, Stage, TelemetryConfig, TelemetryReport, WallClock};

/// The serving-facing observability surface: re-exports of the
/// [`crate::telemetry`] types a replay consumer needs (configure capture
/// via [`ReplayConfig::with_telemetry`], read results off
/// [`ServeReport::telemetry`]).
///
/// ```
/// use canids_core::serve::obs::{Stage, TelemetryConfig};
///
/// let cfg = TelemetryConfig::default();
/// assert!(cfg.spans);
/// assert_eq!(Stage::Infer.name(), "infer");
/// ```
pub mod obs {
    pub use crate::telemetry::{
        Counter, MetricsRegistry, Probe, Span, Stage, StageStats, TelemetryConfig, TelemetryReport,
        WallClock,
    };
}

/// How replay arrivals are paced onto the serving substrate.
///
/// # Example
///
/// ```
/// use canids_core::serve::{Pacing, ReplayConfig};
/// use canids_can::timing::Bitrate;
///
/// let config = ReplayConfig {
///     pacing: Pacing::FdClass,
///     ..ReplayConfig::default()
/// };
/// // FD-class pacing overrides the configured wire rate.
/// assert_eq!(config.wire_bitrate(), Bitrate::new(5_000_000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Pacing {
    /// Back-to-back wire pacing at [`ReplayConfig::bitrate`] — the
    /// worst-case offered load of a saturated bus.
    #[default]
    Saturated,
    /// Saturated pacing at a CAN-FD-class 5 Mb/s data rate (the
    /// arbitration-phase format is unchanged, only the offered frame
    /// rate scales).
    FdClass,
    /// The capture's own timestamps — bursty captures exercise overload
    /// onset *and* subsidence, which saturated pacing cannot.
    AsRecorded,
}

/// How the serving side reacts to sustained overload, instead of the
/// silent FIFO drops a saturated queue defaults to.
///
/// # Example
///
/// ```
/// use canids_core::serve::AdmissionPolicy;
///
/// let measured = AdmissionPolicy::ShedLowestMeasuredValue {
///     window: 256,
///     priorities: vec![2, 1],
/// };
/// assert_eq!(measured.label(), "shed-lowest-measured-value");
/// assert_eq!(AdmissionPolicy::DropFrames.label(), "drop-frames");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Today's behaviour: a saturated queue drops frames at its FIFO.
    DropFrames,
    /// Detach the lowest-**static**-priority model of the overloaded
    /// shard (its IP stays resident) and re-admit it once the shard has
    /// drained — coverage degrades one model at a time, frames keep
    /// flowing.
    ShedLowestValue {
        /// Per-model value, in fleet bundle order; higher = shed later.
        priorities: Vec<u32>,
    },
    /// Detach the model with the lowest **measured** detection
    /// contribution: a windowed confirmed-positive count (verdicts that
    /// flagged a frame whose ground truth was an attack) computed from
    /// the live [`Verdict`] stream. A model that never fires is shed
    /// first regardless of its static priority; `priorities` only break
    /// score ties (and order re-admission when scores have decayed).
    ShedLowestMeasuredValue {
        /// Sliding window, in offered frames, over which each model's
        /// confirmed positives are counted (clamped to at least 1).
        window: usize,
        /// Static tie-break values, in fleet bundle order.
        priorities: Vec<u32>,
    },
    /// Migrate the overloaded shard's lowest-priority model to the board
    /// with the most headroom (warm standby pre-provisioned from real
    /// resource remainders; the model is dark for the migration delay).
    /// Falls back to shedding when no standby fits anywhere.
    Rebalance {
        /// Per-model value, in fleet bundle order; higher = migrated
        /// later.
        priorities: Vec<u32>,
    },
}

impl AdmissionPolicy {
    /// Short label for tables and JSON reports.
    pub fn label(&self) -> &'static str {
        match self {
            AdmissionPolicy::DropFrames => "drop-frames",
            AdmissionPolicy::ShedLowestValue { .. } => "shed-lowest-value",
            AdmissionPolicy::ShedLowestMeasuredValue { .. } => "shed-lowest-measured-value",
            AdmissionPolicy::Rebalance { .. } => "rebalance",
        }
    }

    pub(crate) fn priorities(&self) -> Option<&[u32]> {
        match self {
            AdmissionPolicy::DropFrames => None,
            AdmissionPolicy::ShedLowestValue { priorities }
            | AdmissionPolicy::ShedLowestMeasuredValue { priorities, .. }
            | AdmissionPolicy::Rebalance { priorities } => Some(priorities),
        }
    }
}

/// Hysteresis thresholds of the per-shard overload detector, as
/// fractions of the software FIFO depth. Defaults are chosen so that
/// even a worst-case backlog growth of one frame per arrival cannot
/// reach the FIFO rim between the high watermark and the shed trigger
/// (`0.7 · depth + shed_sustain < depth` at the default depth of 64).
///
/// # Example
///
/// ```
/// use canids_core::serve::OverloadThresholds;
///
/// let th = OverloadThresholds::default();
/// assert!(th.high_frac * 64.0 + f64::from(th.shed_sustain) < 64.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct OverloadThresholds {
    /// Backlog fraction at or above which an arrival counts as hot.
    pub high_frac: f64,
    /// Backlog fraction at or below which an arrival counts as cool.
    pub low_frac: f64,
    /// Consecutive hot arrivals before the policy acts.
    pub shed_sustain: u32,
    /// Consecutive cool arrivals before a shed model is re-admitted.
    pub readmit_sustain: u32,
}

impl Default for OverloadThresholds {
    fn default() -> Self {
        OverloadThresholds {
            high_frac: 0.7,
            low_frac: 0.15,
            shed_sustain: 12,
            readmit_sustain: 96,
        }
    }
}

/// What an admission event did.
///
/// # Example
///
/// ```
/// use canids_core::serve::FleetAction;
///
/// assert_ne!(FleetAction::Shed, FleetAction::Readmit);
/// assert!(matches!(FleetAction::Migrate { to: 1 }, FleetAction::Migrate { .. }));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetAction {
    /// Model detached from its shard.
    Shed,
    /// Previously shed model re-admitted.
    Readmit,
    /// Model migrated to another board's warm standby.
    Migrate {
        /// Destination board index.
        to: usize,
    },
    /// The board's gateway went dark (event-driven transport fault):
    /// every frame arriving before `until` was dropped. For this
    /// variant `FleetEvent::model` carries no meaning and is 0.
    GatewayDark {
        /// End of the outage window (exclusive).
        until: SimTime,
    },
}

/// One admission-policy event during a replay.
///
/// # Example
///
/// ```
/// use canids_core::serve::{FleetAction, FleetEvent};
/// use canids_can::time::SimTime;
///
/// let e = FleetEvent {
///     time: SimTime::from_millis(3),
///     board: 0,
///     model: 5,
///     action: FleetAction::Shed,
/// };
/// assert_eq!(e.action, FleetAction::Shed);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetEvent {
    /// Board-local time the action was taken.
    pub time: SimTime,
    /// Board the overload was detected on.
    pub board: usize,
    /// Fleet model index acted on.
    pub model: usize,
    /// What happened.
    pub action: FleetAction,
}

/// How the fleet backend moves frames from the backbone to each
/// board: the closed-form analytic gateway model, or the event-driven
/// [`crate::net`] runtime (finite buffers, queue disciplines, faults).
///
/// On uncongested single-backbone topologies the two produce
/// bit-identical [`ServeReport`]s (`tests/net_equivalence.rs`); the
/// event-driven path additionally fills [`ServeReport::gateways`] and
/// logs outage windows into [`ServeReport::events`].
///
/// # Example
///
/// ```
/// use canids_core::net::NetConfig;
/// use canids_core::serve::FleetTransport;
///
/// assert_eq!(FleetTransport::default(), FleetTransport::Analytic);
/// let event = FleetTransport::EventDriven(NetConfig::default());
/// assert!(matches!(event, FleetTransport::EventDriven(_)));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub enum FleetTransport {
    /// Per-shard [`SegmentForwarder`] recurrence — exact, allocation
    /// free, no congestion or fault model.
    #[default]
    Analytic,
    /// The [`crate::net`] discrete-event simulation with the given
    /// queue discipline and fault schedule.
    EventDriven(NetConfig),
}

/// The unified replay configuration every backend serves under.
///
/// # Example
///
/// ```
/// use canids_core::serve::{AdmissionPolicy, FleetTransport, Pacing, ReplayConfig};
/// use canids_soc::ecu::SchedPolicy;
///
/// let config = ReplayConfig::default()
///     .with_policy(SchedPolicy::DmaBatch { batch: 32 })
///     .with_admission(AdmissionPolicy::ShedLowestValue { priorities: vec![2, 1] });
/// assert_eq!(config.pacing, Pacing::Saturated);
/// assert_eq!(config.ecu.policy, SchedPolicy::DmaBatch { batch: 32 });
/// assert_eq!(config.transport, FleetTransport::Analytic);
/// ```
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// Arrival pacing.
    pub pacing: Pacing,
    /// Wire bitrate: the saturated pacing rate, and the far-segment rate
    /// gateway forwarding serialises onto (fleet backend). Ignored for
    /// pacing under [`Pacing::FdClass`] (fixed 5 Mb/s) and
    /// [`Pacing::AsRecorded`].
    pub bitrate: Bitrate,
    /// Base per-shard ECU/service configuration ([`SchedPolicy`], FIFO
    /// depth). The software backend uses `queue_depth` for its service
    /// FIFO.
    pub ecu: EcuConfig,
    /// Per-board scheduling-policy overrides (board index, policy) —
    /// heterogeneous fleets run heterogeneous integrations.
    pub ecu_overrides: Vec<(usize, SchedPolicy)>,
    /// Overload governance.
    pub admission: AdmissionPolicy,
    /// Overload-detector hysteresis.
    pub thresholds: OverloadThresholds,
    /// Gateway store-and-forward processing delay per frame (fleet
    /// backend only).
    pub gateway_delay: SimTime,
    /// Dark time of a migrating model under
    /// [`AdmissionPolicy::Rebalance`].
    pub migration_delay: SimTime,
    /// Backbone-to-board frame transport (fleet backend only).
    pub transport: FleetTransport,
    /// Software-backend inference window: frames per batched dispatch.
    /// `1` serves frame-at-a-time (the historical path, bit-identical to
    /// it); `N > 1` defers admitted frames into a window and classifies
    /// the whole window in one measured dispatch, DMA-batch style, so
    /// per-call overhead amortises. Ignored by simulated backends (their
    /// batching knob is [`SchedPolicy::DmaBatch`]).
    pub batch: usize,
    /// Capture shards of [`ServeHarness::replay_sharded`]: the capture
    /// splits into this many contiguous slices, each replayed as an
    /// independent single-shard session and merged in shard order. A
    /// *semantic* knob — results depend on it, never on `workers`.
    pub workers: ShardWorkers,
    /// How many capture shards [`ServeHarness::replay_sharded`] splits
    /// the replay into.
    pub shards: usize,
    /// Opt-in telemetry capture ([`crate::telemetry`]): per-stage
    /// tracing spans and an integer metrics registry, attached to
    /// [`ServeReport::telemetry`]. `None` (the default) is provably
    /// free — every other report field is bit-identical with or without
    /// it.
    pub telemetry: Option<TelemetryConfig>,
}

/// Worker-thread count for sharded replays: an *execution-only* knob —
/// any value produces bit-identical [`ServeReport`]s, it only sets how
/// many shards run concurrently.
///
/// # Example
///
/// ```
/// use canids_core::serve::ShardWorkers;
///
/// assert_eq!(ShardWorkers::Fixed(2).count(8), 2);
/// assert!(ShardWorkers::Auto.count(8) >= 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardWorkers {
    /// One worker per available core (capped at the shard count).
    #[default]
    Auto,
    /// Exactly this many workers (capped at the shard count; min 1).
    Fixed(usize),
}

impl ShardWorkers {
    /// The effective pool size for `jobs` shards.
    pub fn count(self, jobs: usize) -> usize {
        let cap = jobs.max(1);
        match self {
            ShardWorkers::Auto => std::thread::available_parallelism()
                .map_or(1, |n| n.get())
                .min(cap),
            ShardWorkers::Fixed(n) => n.clamp(1, cap),
        }
    }
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            pacing: Pacing::Saturated,
            bitrate: Bitrate::HIGH_SPEED_1M,
            ecu: EcuConfig::default(),
            ecu_overrides: Vec::new(),
            admission: AdmissionPolicy::DropFrames,
            thresholds: OverloadThresholds::default(),
            gateway_delay: SimTime::from_micros(20),
            migration_delay: SimTime::from_millis(2),
            transport: FleetTransport::Analytic,
            batch: 1,
            workers: ShardWorkers::Auto,
            shards: 1,
            telemetry: None,
        }
    }
}

impl ReplayConfig {
    /// Sets the base scheduling policy (builder style).
    pub fn with_policy(mut self, policy: SchedPolicy) -> Self {
        self.ecu.policy = policy;
        self
    }

    /// Sets the admission policy (builder style).
    pub fn with_admission(mut self, admission: AdmissionPolicy) -> Self {
        self.admission = admission;
        self
    }

    /// Sets the wire bitrate (builder style).
    pub fn with_bitrate(mut self, bitrate: Bitrate) -> Self {
        self.bitrate = bitrate;
        self
    }

    /// Sets the fleet transport (builder style).
    pub fn with_transport(mut self, transport: FleetTransport) -> Self {
        self.transport = transport;
        self
    }

    /// Sets the pacing mode (builder style).
    pub fn with_pacing(mut self, pacing: Pacing) -> Self {
        self.pacing = pacing;
        self
    }

    /// Sets the software-backend inference window (builder style).
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// Sets the sharded-replay shard count (builder style).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Sets the sharded-replay worker pool (builder style).
    pub fn with_workers(mut self, workers: ShardWorkers) -> Self {
        self.workers = workers;
        self
    }

    /// Enables telemetry capture for the replay (builder style): the
    /// report gains a [`crate::telemetry::TelemetryReport`] with
    /// per-stage spans and the metrics snapshot.
    pub fn with_telemetry(mut self, telemetry: TelemetryConfig) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// The effective wire rate: `bitrate`, unless FD-class pacing pins
    /// it to 5 Mb/s.
    pub fn wire_bitrate(&self) -> Bitrate {
        match self.pacing {
            Pacing::FdClass => Bitrate::new(5_000_000),
            Pacing::Saturated | Pacing::AsRecorded => self.bitrate,
        }
    }

    /// The ECU configuration board `b` serves under (base plus
    /// override).
    pub fn ecu_for(&self, board: usize) -> EcuConfig {
        let mut c = self.ecu;
        if let Some(&(_, policy)) = self.ecu_overrides.iter().find(|&&(b, _)| b == board) {
            c.policy = policy;
        }
        c
    }
}

/// One typed per-frame verdict of a replay, as delivered to a
/// [`VerdictSink`]: the fused flag over every shard that serviced the
/// frame, ground truth, and per-model flag/consultation masks in fleet
/// bundle order.
///
/// Frames dropped by every shard produce no verdict.
///
/// # Example
///
/// ```no_run
/// use canids_core::prelude::*;
/// use canids_core::serve::{ReplayConfig, ServeHarness, SoftwareBackend, Verdict};
///
/// let report = IdsPipeline::new(PipelineConfig::dos().quick()).run()?;
/// let mut harness = ServeHarness::new(SoftwareBackend::single(report.detector.int_mlp.clone()));
/// let mut verdicts: Vec<Verdict> = Vec::new();
/// let capture = IdsPipeline::new(PipelineConfig::dos().quick()).generate_capture();
/// harness.replay_with(&capture, &ReplayConfig::default(), &mut verdicts)?;
/// let confirmed = verdicts.iter().filter(|v| v.flagged && v.truth_attack).count();
/// println!("{confirmed} confirmed positives");
/// # Ok::<(), canids_core::CoreError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Verdict {
    /// Frame ordinal in the replay (0-based arrival order).
    pub ordinal: usize,
    /// Backbone arrival time of the frame.
    pub arrival: SimTime,
    /// When the slowest serving shard completed its verdict.
    pub completed_at: SimTime,
    /// `true` when any serving model flagged the frame.
    pub flagged: bool,
    /// Ground truth of the replayed record.
    pub truth_attack: bool,
    /// Per-model flag bitmask, in fleet bundle order (bit `m` set when
    /// model `m` flagged; models beyond index 63 fold into `flagged`).
    pub model_flags: u64,
    /// Which models were consulted, as the same bitmask.
    pub consulted: u64,
    /// Shards that serviced this frame.
    pub boards: usize,
}

impl Verdict {
    /// `true` when the fused prediction matches ground truth.
    pub fn correct(&self) -> bool {
        self.flagged == self.truth_attack
    }

    /// Whether fleet model `m` flagged this frame.
    pub fn model_flagged(&self, m: usize) -> bool {
        m < 64 && self.model_flags & (1 << m) != 0
    }

    /// Whether fleet model `m` was consulted for this frame.
    pub fn model_consulted(&self, m: usize) -> bool {
        m < 64 && self.consulted & (1 << m) != 0
    }
}

/// Receives the per-frame [`Verdict`] stream of a replay, in frame
/// ordinal order.
///
/// Implemented for `Vec<Verdict>` (collect everything) and for any
/// `FnMut(&Verdict)` closure.
///
/// # Example
///
/// ```
/// use canids_core::serve::{Verdict, VerdictSink};
///
/// let mut hits = 0usize;
/// let mut sink = |v: &Verdict| {
///     if v.flagged && v.truth_attack {
///         hits += 1;
///     }
/// };
/// # let _ = &mut sink as &mut dyn VerdictSink;
/// ```
pub trait VerdictSink {
    /// Delivers one verdict.
    fn verdict(&mut self, v: &Verdict);
}

impl VerdictSink for Vec<Verdict> {
    fn verdict(&mut self, v: &Verdict) {
        self.push(*v);
    }
}

impl<F: FnMut(&Verdict)> VerdictSink for F {
    fn verdict(&mut self, v: &Verdict) {
        self(v);
    }
}

/// A sink that discards every verdict (the default for
/// [`ServeHarness::replay`]).
struct NullSink;

impl VerdictSink for NullSink {
    fn verdict(&mut self, _v: &Verdict) {}
}

/// Static shape of one serving session: where every model runs, per-
/// shard names/FIFO depths, and model display names — everything the
/// harness needs to aggregate reports and drive admission without
/// knowing the backend.
///
/// # Example
///
/// ```
/// use canids_core::serve::ServeTopology;
///
/// let topo = ServeTopology::single_shard(&["dos-ids".into(), "fuzzy-ids".into()], 64);
/// assert_eq!(topo.shards(), 1);
/// assert_eq!(topo.models, 2);
/// assert_eq!(topo.homes[1].local, 1);
/// ```
#[derive(Debug, Clone)]
pub struct ServeTopology {
    /// Fleet model count.
    pub models: usize,
    /// Home slot per model, in fleet bundle order.
    pub homes: Vec<Slot>,
    /// Warm-standby slot per model (`None` without one).
    pub standbys: Vec<Option<Slot>>,
    /// Model display names, in fleet bundle order.
    pub model_names: Vec<String>,
    /// Shard (board) display names, in shard order.
    pub shard_names: Vec<String>,
    /// Models homed per shard.
    pub shard_models: Vec<usize>,
    /// Software-FIFO depth per shard.
    pub queue_depths: Vec<usize>,
}

impl ServeTopology {
    /// A one-shard topology hosting `names.len()` models behind one
    /// FIFO of `queue_depth` — the shape of the software and single-ECU
    /// backends.
    pub fn single_shard(names: &[String], queue_depth: usize) -> Self {
        ServeTopology {
            models: names.len(),
            homes: (0..names.len())
                .map(|local| Slot { shard: 0, local })
                .collect(),
            standbys: vec![None; names.len()],
            model_names: names.to_vec(),
            shard_names: vec!["board".to_owned()],
            shard_models: vec![names.len()],
            queue_depths: vec![queue_depth.max(1)],
        }
    }

    /// Shard count.
    pub fn shards(&self) -> usize {
        self.shard_names.len()
    }

    /// The fleet model occupying `slot`, if any (home or standby).
    pub fn slot_model(&self, slot: Slot) -> Option<usize> {
        self.homes
            .iter()
            .position(|&h| h == slot)
            .or_else(|| self.standbys.iter().position(|&s| s == Some(slot)))
    }
}

/// Outcome of offering one frame to one shard.
///
/// # Example
///
/// ```
/// use canids_core::serve::ShardPush;
/// use canids_can::time::SimTime;
///
/// let p = ShardPush { delivered: SimTime::from_micros(140), admitted: true };
/// assert!(p.admitted);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPush {
    /// When the frame reached the shard (gateway forwarding included).
    pub delivered: SimTime,
    /// `false` when the shard's FIFO was full and the frame was dropped.
    pub admitted: bool,
}

/// One shard-local verdict drained from a backend session, in
/// board-local model-mask coordinates (the harness maps them to fleet
/// bundle order through the topology).
///
/// # Example
///
/// ```
/// use canids_core::serve::ShardVerdict;
/// use canids_can::time::SimTime;
///
/// let v = ShardVerdict {
///     shard: 0,
///     ordinal: 7,
///     completed_at: SimTime::from_micros(300),
///     flagged: true,
///     model_flags: 0b10,
///     active_mask: 0b11,
/// };
/// assert!(v.flagged && v.model_flags & 0b10 != 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardVerdict {
    /// Shard that produced the verdict.
    pub shard: usize,
    /// Frame ordinal the verdict answers.
    pub ordinal: usize,
    /// When the verdict became available.
    pub completed_at: SimTime,
    /// `true` when any consulted model flagged the frame.
    pub flagged: bool,
    /// Board-local per-model flag bitmask.
    pub model_flags: u64,
    /// Board-local consultation bitmask (active models at serving time).
    pub active_mask: u64,
}

/// Per-shard closing totals of one session.
///
/// # Example
///
/// ```
/// use canids_core::serve::ShardTotals;
///
/// let t = ShardTotals { dropped: 0, serviced: 128, energy: None, busy_wall: None };
/// assert_eq!(t.serviced, 128);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ShardTotals {
    /// Frames this shard dropped at its FIFO.
    pub dropped: u64,
    /// Frames this shard serviced.
    pub serviced: usize,
    /// Board power/energy accounting (absent on the software backend).
    pub energy: Option<EnergyStats>,
    /// Wall-clock busy time of a software shard (drives the sustained
    /// frames/s figure; absent on simulated backends).
    pub busy_wall: Option<Duration>,
}

/// An open serving session on a [`ServeBackend`]: the harness pushes
/// paced frames shard by shard, drains shard verdicts, reads backlogs
/// and toggles model activation for admission governance.
///
/// # Example
///
/// ```no_run
/// use canids_core::serve::{ReplayConfig, ServeBackend, ServeSession, SoftwareBackend};
/// use canids_qnn::prelude::*;
///
/// let model = QuantMlp::new(MlpConfig::paper_4bit())?.export()?;
/// let mut backend = SoftwareBackend::single(model);
/// let session = backend.open(&ReplayConfig::default())?;
/// assert_eq!(session.topology().shards(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub trait ServeSession {
    /// The session's static shape.
    fn topology(&self) -> &ServeTopology;

    /// Warms caches/weights outside the measured clock (no-op on
    /// simulated backends).
    fn warmup(&mut self, _rec: &LabeledFrame) {}

    /// Offers one frame to shard `shard`.
    ///
    /// # Errors
    ///
    /// Driver/bus errors of the underlying substrate.
    fn push_shard(
        &mut self,
        shard: usize,
        ordinal: usize,
        rec: &LabeledFrame,
    ) -> Result<ShardPush, CoreError>;

    /// Appends verdicts that became available on `shard` since the last
    /// drain (a DMA window lands all at once).
    fn drain_verdicts(&mut self, shard: usize, out: &mut Vec<ShardVerdict>);

    /// Frames currently occupying shard `shard`'s FIFO slots.
    fn backlog(&self, shard: usize) -> usize;

    /// Models shard `shard` currently consults.
    fn active_models(&self, shard: usize) -> usize;

    /// Enables or disables the model at `slot` for subsequent pushes.
    fn set_slot_active(&mut self, slot: Slot, active: bool);

    /// Drains any remaining network events and returns the per-gateway
    /// queue/occupancy section plus network fault events for the
    /// report's event log. Non-networked backends (and the analytic
    /// fleet transport) return empty lists.
    fn network(&mut self) -> (Vec<GatewayLoad>, Vec<FleetEvent>) {
        (Vec::new(), Vec::new())
    }

    /// Attaches a telemetry [`Probe`] for the rest of the session: the
    /// substrate records per-stage spans (featurise/pack/infer, DMA
    /// windows, gateway hops) through it. Default: ignore the probe
    /// (an uninstrumented substrate still replays correctly — it just
    /// contributes no stage spans).
    fn attach_probe(&mut self, _probe: Probe) {}

    /// Flushes trailing state (e.g. a partial DMA window), appends the
    /// remaining verdicts and returns per-shard totals.
    ///
    /// # Errors
    ///
    /// Driver/bus errors from the trailing flush.
    fn finish(self, out: &mut Vec<ShardVerdict>) -> Result<Vec<ShardTotals>, CoreError>
    where
        Self: Sized;
}

/// A serving substrate the [`ServeHarness`] can replay captures
/// against. Implemented by [`SoftwareBackend`], [`EcuBackend`] and
/// [`FleetBackend`].
///
/// # Example
///
/// ```no_run
/// use canids_core::serve::{ReplayConfig, ServeBackend, ServeHarness, SoftwareBackend};
/// use canids_qnn::prelude::*;
///
/// let model = QuantMlp::new(MlpConfig::paper_4bit())?.export()?;
/// let backend = SoftwareBackend::single(model);
/// assert_eq!(backend.label(), "software");
/// assert_eq!(backend.models(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub trait ServeBackend {
    /// The session type a replay runs through.
    type Session<'s>: ServeSession
    where
        Self: 's;

    /// Short substrate label for reports (`"software"`, `"ecu"`,
    /// `"fleet"`).
    fn label(&self) -> String;

    /// Models this backend serves (fleet bundle order).
    fn models(&self) -> usize;

    /// Opens a fresh serving session under `config`.
    ///
    /// # Errors
    ///
    /// Substrate construction errors (ECU attach, empty fleet, …).
    fn open(&mut self, config: &ReplayConfig) -> Result<Self::Session<'_>, CoreError>;
}

// --------------------------------------------------------------------
// Software backend
// --------------------------------------------------------------------

/// The pure-software substrate: N [`StreamingEvaluator`]s behind one
/// [`ServiceQueue`], service times measured on the host wall clock —
/// what *this machine* can serve, as opposed to the simulated-SoC
/// backends.
///
/// # Example
///
/// ```no_run
/// use canids_core::prelude::*;
/// use canids_core::serve::{ReplayConfig, ServeHarness, SoftwareBackend};
///
/// let report = IdsPipeline::new(PipelineConfig::dos().quick()).run()?;
/// let capture = IdsPipeline::new(PipelineConfig::dos().quick()).generate_capture();
/// let mut harness = ServeHarness::new(SoftwareBackend::single(report.detector.int_mlp.clone()));
/// let serve = harness.replay(&capture, &ReplayConfig::default())?;
/// assert!(serve.sustained_fps.is_some(), "software reports host capacity");
/// # Ok::<(), canids_core::CoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SoftwareBackend {
    models: Vec<IntegerMlp>,
    names: Vec<String>,
}

impl SoftwareBackend {
    /// A single-model software substrate.
    pub fn single(model: IntegerMlp) -> Self {
        SoftwareBackend::new(vec![model])
    }

    /// An N-model software substrate (shared truth, per-model flags).
    pub fn new(models: Vec<IntegerMlp>) -> Self {
        let names = (0..models.len()).map(|i| format!("model-{i}")).collect();
        SoftwareBackend { models, names }
    }

    /// Overrides the per-model display names (builder style).
    ///
    /// # Panics
    ///
    /// Panics when the name count differs from the model count.
    pub fn with_names(mut self, names: Vec<String>) -> Self {
        assert_eq!(names.len(), self.models.len(), "one name per model");
        self.names = names;
        self
    }
}

impl ServeBackend for SoftwareBackend {
    type Session<'s> = SoftwareSession;

    fn label(&self) -> String {
        "software".to_owned()
    }

    fn models(&self) -> usize {
        self.models.len()
    }

    fn open(&mut self, config: &ReplayConfig) -> Result<SoftwareSession, CoreError> {
        let depth = config.ecu.queue_depth.max(1);
        Ok(SoftwareSession {
            evals: self
                .models
                .iter()
                .map(|m| StreamingEvaluator::new(m.clone()))
                .collect(),
            active: vec![true; self.models.len()],
            queue: ServiceQueue::new(depth),
            batch: config.batch.max(1),
            window_ords: Vec::new(),
            window_recs: Vec::new(),
            verdict_buf: Vec::new(),
            dropped: 0,
            serviced: 0,
            busy_wall: Duration::ZERO,
            pending: Vec::new(),
            topology: ServeTopology::single_shard(&self.names, depth),
            probe: None,
        })
    }
}

/// An open [`SoftwareBackend`] session (see [`ServeSession`]).
///
/// # Example
///
/// ```no_run
/// use canids_core::serve::{ReplayConfig, ServeBackend, ServeSession, SoftwareBackend};
/// use canids_qnn::prelude::*;
///
/// let model = QuantMlp::new(MlpConfig::paper_4bit())?.export()?;
/// let mut backend = SoftwareBackend::single(model);
/// let session = backend.open(&ReplayConfig::default())?;
/// assert_eq!(session.active_models(0), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct SoftwareSession {
    evals: Vec<StreamingEvaluator>,
    active: Vec<bool>,
    queue: ServiceQueue,
    /// Frames per batched inference dispatch (1 = frame-at-a-time).
    batch: usize,
    /// Ordinals/records of admitted frames awaiting a batched dispatch
    /// (always empty when `batch == 1`).
    window_ords: Vec<usize>,
    window_recs: Vec<LabeledFrame>,
    /// Reusable per-dispatch verdict buffer.
    verdict_buf: Vec<StreamVerdict>,
    dropped: u64,
    serviced: usize,
    busy_wall: Duration,
    pending: Vec<ShardVerdict>,
    topology: ServeTopology,
    /// Telemetry probe; when attached, dispatches run the staged push
    /// path so featurise/pack/infer get individual wall measurements.
    probe: Option<Probe>,
}

impl ServeSession for SoftwareSession {
    fn topology(&self) -> &ServeTopology {
        &self.topology
    }

    fn warmup(&mut self, rec: &LabeledFrame) {
        // Page in weights and settle caches outside the measured clock,
        // then clear the online accounting the warmup touched.
        for eval in &mut self.evals {
            for _ in 0..8 {
                eval.push(rec);
            }
            eval.reset();
        }
    }

    fn push_shard(
        &mut self,
        _shard: usize,
        ordinal: usize,
        rec: &LabeledFrame,
    ) -> Result<ShardPush, CoreError> {
        let arrival = rec.timestamp;
        if !self
            .queue
            .admit_with_pending(arrival, self.window_recs.len())
        {
            self.dropped += 1;
            return Ok(ShardPush {
                delivered: arrival,
                admitted: false,
            });
        }
        if self.batch > 1 {
            // Defer into the window; the whole window is classified in
            // one measured dispatch when it fills (or at finish), with
            // service starting at the flush-trigger arrival — the same
            // deferred-verdict semantics as `SchedPolicy::DmaBatch`.
            self.window_ords.push(ordinal);
            self.window_recs.push(*rec);
            if self.window_recs.len() >= self.batch {
                self.flush_window(arrival);
            }
            return Ok(ShardPush {
                delivered: arrival,
                admitted: true,
            });
        }
        // The software backend reports measured host latency by
        // contract; `WallClock` is the workspace's one audited gate.
        let t0 = WallClock::start();
        let mut stages = StagedNanos::default();
        let mut flagged = false;
        let mut model_flags = 0u64;
        for (k, (eval, _)) in self
            .evals
            .iter_mut()
            .zip(&self.active)
            .enumerate()
            .filter(|&(_, (_, &a))| a)
        {
            let v = if self.probe.is_some() {
                eval.push_staged(rec, &mut stages)
            } else {
                eval.push(rec)
            };
            if v.flagged {
                flagged = true;
                if k < 64 {
                    model_flags |= 1 << k;
                }
            }
        }
        let wall = t0.elapsed();
        self.busy_wall += wall;
        // At least 1 ns of simulated service so completions advance.
        let service = SimTime::from_nanos((wall.as_nanos() as u64).max(1));
        let start = self.queue.start_time(arrival);
        let completed_at = self.queue.serve(start, service);
        if let Some(probe) = &self.probe {
            stages.record_from(probe, 0, start);
        }
        self.serviced += 1;
        self.pending.push(ShardVerdict {
            shard: 0,
            ordinal,
            completed_at,
            flagged,
            model_flags,
            active_mask: canids_soc::ecu::active_mask_of(&self.active),
        });
        Ok(ShardPush {
            delivered: arrival,
            admitted: true,
        })
    }

    fn drain_verdicts(&mut self, _shard: usize, out: &mut Vec<ShardVerdict>) {
        out.append(&mut self.pending);
    }

    fn backlog(&self, _shard: usize) -> usize {
        self.queue.backlog() + self.window_recs.len()
    }

    fn active_models(&self, _shard: usize) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }

    fn set_slot_active(&mut self, slot: Slot, active: bool) {
        // A buffered window was admitted under the current activation;
        // classify it before the mask changes.
        if let Some(last) = self.window_recs.last() {
            let ready = last.timestamp;
            self.flush_window(ready);
        }
        self.active[slot.local] = active;
    }

    fn attach_probe(&mut self, probe: Probe) {
        self.probe = Some(probe);
    }

    fn finish(mut self, out: &mut Vec<ShardVerdict>) -> Result<Vec<ShardTotals>, CoreError> {
        if let Some(last) = self.window_recs.last() {
            let ready = last.timestamp;
            self.flush_window(ready);
        }
        out.append(&mut self.pending);
        Ok(vec![ShardTotals {
            dropped: self.dropped,
            serviced: self.serviced,
            energy: None,
            busy_wall: Some(self.busy_wall),
        }])
    }
}

impl SoftwareSession {
    /// Classifies every buffered window frame in one measured dispatch
    /// and books their (deferred) verdicts, service beginning at
    /// `ready` — the flush trigger's arrival, mirroring the DMA-batch
    /// transfer instant. Per-frame service time is the dispatch wall
    /// clock split evenly across the window.
    fn flush_window(&mut self, ready: SimTime) {
        let n = self.window_recs.len();
        if n == 0 {
            return;
        }
        let mut flags = vec![(false, 0u64); n];
        // The software backend reports measured host latency by
        // contract; `WallClock` is the workspace's one audited gate.
        let t0 = WallClock::start();
        let mut stages = StagedNanos::default();
        for (k, (eval, _)) in self
            .evals
            .iter_mut()
            .zip(&self.active)
            .enumerate()
            .filter(|&(_, (_, &a))| a)
        {
            self.verdict_buf.clear();
            if self.probe.is_some() {
                eval.push_batch_staged(&self.window_recs, &mut self.verdict_buf, &mut stages);
            } else {
                eval.push_batch(&self.window_recs, &mut self.verdict_buf);
            }
            for (slot, v) in flags.iter_mut().zip(&self.verdict_buf) {
                if v.flagged {
                    slot.0 = true;
                    if k < 64 {
                        slot.1 |= 1 << k;
                    }
                }
            }
        }
        let wall = t0.elapsed();
        self.busy_wall += wall;
        if let Some(probe) = &self.probe {
            // One span triple per window, laid from the dispatch start.
            stages.record_from(probe, 0, self.queue.start_time(ready));
        }
        // Even split, at least 1 ns each so completions advance.
        let per = SimTime::from_nanos(((wall.as_nanos() as u64) / n as u64).max(1));
        let active_mask = canids_soc::ecu::active_mask_of(&self.active);
        self.window_recs.clear();
        for (ordinal, (flagged, model_flags)) in self.window_ords.drain(..).zip(flags) {
            let start = self.queue.start_time(ready);
            let completed_at = self.queue.serve(start, per);
            self.serviced += 1;
            self.pending.push(ShardVerdict {
                shard: 0,
                ordinal,
                completed_at,
                flagged,
                model_flags,
                active_mask,
            });
        }
    }
}

// --------------------------------------------------------------------
// Single-ECU backend
// --------------------------------------------------------------------

/// The single-board substrate: one simulated N-detector ECU served
/// frame-at-a-time through the full SoC path (driver, DMA, interrupts,
/// FIFO queueing), so latencies/drops/energy are platform facts rather
/// than host noise.
///
/// Construct it from a [`MultiIdsDeployment`] (a fresh ECU is built per
/// session, so one backend supports any number of replays) or over an
/// existing [`IdsEcu`] with [`EcuBackend::over`] (one session only —
/// board time is monotonic; the ECU's own `EcuConfig` is kept).
///
/// # Example
///
/// ```no_run
/// use canids_core::prelude::*;
/// use canids_core::serve::{EcuBackend, ReplayConfig, ServeHarness};
/// use canids_soc::ecu::SchedPolicy;
///
/// let bundles = vec![/* DetectorBundle::new(...) */];
/// let deployment = deploy_multi_ids(&bundles, CompileConfig::default())?;
/// let capture = IdsPipeline::new(PipelineConfig::dos().quick()).generate_capture();
/// let mut harness = ServeHarness::new(EcuBackend::new(&deployment));
/// let config = ReplayConfig::default().with_policy(SchedPolicy::DmaBatch { batch: 32 });
/// let report = harness.replay(&capture, &config)?;
/// assert!(report.energy.is_some(), "the SoC path reports power/energy");
/// # Ok::<(), canids_core::CoreError>(())
/// ```
pub struct EcuBackend<'d> {
    deployment: Option<&'d MultiIdsDeployment>,
    owned_deployment: Option<MultiIdsDeployment>,
    borrowed: Option<&'d mut IdsEcu>,
    owned: Option<IdsEcu>,
    names: Vec<String>,
}

impl std::fmt::Debug for EcuBackend<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EcuBackend")
            .field("models", &self.names.len())
            .finish_non_exhaustive()
    }
}

impl<'d> EcuBackend<'d> {
    /// A backend over a compiled deployment: every session gets a fresh
    /// ECU ([`MultiIdsDeployment::fresh_ecu`]) configured from the
    /// replay's [`ReplayConfig::ecu`].
    pub fn new(deployment: &'d MultiIdsDeployment) -> Self {
        let names = deployment
            .plan
            .models
            .iter()
            .map(|m| m.name.clone())
            .collect();
        EcuBackend {
            deployment: Some(deployment),
            owned_deployment: None,
            borrowed: None,
            owned: None,
            names,
        }
    }

    /// A backend that owns its deployment — same session semantics as
    /// [`new`](EcuBackend::new), without borrowing from the caller.
    /// This is the form a [`ServeHarness::replay_sharded`] factory
    /// returns: the deployment is compiled on the worker thread and
    /// lives inside the backend, so nothing non-`Sync` crosses threads.
    pub fn owning(deployment: MultiIdsDeployment) -> Self {
        let names = deployment
            .plan
            .models
            .iter()
            .map(|m| m.name.clone())
            .collect();
        EcuBackend {
            deployment: None,
            owned_deployment: Some(deployment),
            borrowed: None,
            owned: None,
            names,
        }
    }

    /// A backend over an existing ECU. The ECU's own [`EcuConfig`]
    /// (policy, FIFO depth) is used — the replay config's `ecu` section
    /// is ignored — and board time being monotonic means one session
    /// per backend.
    pub fn over(ecu: &'d mut IdsEcu) -> Self {
        let names = (0..ecu.models().len())
            .map(|i| format!("model-{i}"))
            .collect();
        EcuBackend {
            deployment: None,
            owned_deployment: None,
            borrowed: Some(ecu),
            owned: None,
            names,
        }
    }
}

impl ServeBackend for EcuBackend<'_> {
    type Session<'s>
        = EcuSession<'s>
    where
        Self: 's;

    fn label(&self) -> String {
        "ecu".to_owned()
    }

    fn models(&self) -> usize {
        self.names.len()
    }

    fn open(&mut self, config: &ReplayConfig) -> Result<EcuSession<'_>, CoreError> {
        let ecu: &mut IdsEcu = if let Some(d) = self.deployment.or(self.owned_deployment.as_ref()) {
            self.owned.insert(d.fresh_ecu(config.ecu_for(0))?)
        } else if let Some(ecu) = self.borrowed.as_deref_mut() {
            ecu
        } else {
            unreachable!("EcuBackend always carries a source")
        };
        let depth = ecu.config().queue_depth.max(1);
        let mut topology = ServeTopology::single_shard(&self.names, depth);
        topology.shard_names[0] = "ecu".to_owned();
        Ok(EcuSession {
            stream: ecu.stream(),
            admitted: Vec::new(),
            cursor: 0,
            topology,
            probe: None,
        })
    }
}

/// An open [`EcuBackend`] session (see [`ServeSession`]).
///
/// # Example
///
/// ```no_run
/// use canids_core::prelude::*;
/// use canids_core::serve::{EcuBackend, ReplayConfig, ServeBackend, ServeSession};
///
/// let bundles = vec![/* DetectorBundle::new(...) */];
/// let deployment = deploy_multi_ids(&bundles, CompileConfig::default())?;
/// let mut backend = EcuBackend::new(&deployment);
/// let session = backend.open(&ReplayConfig::default())?;
/// assert_eq!(session.topology().shards(), 1);
/// # Ok::<(), canids_core::CoreError>(())
/// ```
pub struct EcuSession<'a> {
    stream: EcuStream<'a>,
    admitted: Vec<usize>,
    cursor: usize,
    topology: ServeTopology,
    probe: Option<Probe>,
}

impl std::fmt::Debug for EcuSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EcuSession")
            .field("admitted", &self.admitted.len())
            .finish_non_exhaustive()
    }
}

/// Counts freshly emitted admission-policy events on the telemetry
/// probe and stamps each as a zero-width [`Stage::Admission`] span at
/// its decision time.
fn note_admission_events(probe: &Probe, shard: u32, fresh: &[FleetEvent]) {
    for event in fresh {
        let counter = match event.action {
            FleetAction::Shed => Counter::AdmissionShed,
            FleetAction::Readmit => Counter::AdmissionReadmit,
            FleetAction::Migrate { .. } => Counter::AdmissionMigrate,
            FleetAction::GatewayDark { .. } => continue,
        };
        probe.inc(counter);
        probe.record(shard, Stage::Admission, event.time, event.time);
    }
}

/// Forwards profiled SoC stage intervals to a telemetry probe, mapping
/// the soc crate's static stage names onto the interned [`Stage`] table.
fn record_stage_samples(probe: &Probe, shard: u32, samples: &[canids_soc::ecu::StageSample]) {
    for s in samples {
        if let Some(stage) = Stage::from_name(s.stage) {
            probe.record(shard, stage, s.start, s.end);
        }
    }
}

fn drain_ecu_detections(
    shard: usize,
    detections: &[canids_soc::ecu::Detection],
    admitted: &[usize],
    cursor: &mut usize,
    out: &mut Vec<ShardVerdict>,
) {
    for d in &detections[*cursor..] {
        out.push(ShardVerdict {
            shard,
            ordinal: admitted[*cursor],
            completed_at: d.completed_at,
            flagged: d.flagged,
            model_flags: d.model_flags,
            active_mask: d.active_mask,
        });
        *cursor += 1;
    }
}

impl ServeSession for EcuSession<'_> {
    fn topology(&self) -> &ServeTopology {
        &self.topology
    }

    fn push_shard(
        &mut self,
        _shard: usize,
        ordinal: usize,
        rec: &LabeledFrame,
    ) -> Result<ShardPush, CoreError> {
        let encoder = IdBitsPayloadBits;
        let featurize = |f: &CanFrame| encoder.encode(f);
        let before = self.stream.dropped();
        self.stream.push(rec.timestamp, rec.frame, &featurize)?;
        let admitted = self.stream.dropped() == before;
        if admitted {
            self.admitted.push(ordinal);
        }
        Ok(ShardPush {
            delivered: rec.timestamp,
            admitted,
        })
    }

    fn drain_verdicts(&mut self, shard: usize, out: &mut Vec<ShardVerdict>) {
        if let Some(probe) = self.probe.clone() {
            let mut samples = Vec::new();
            self.stream.take_stage_samples(&mut samples);
            record_stage_samples(&probe, shard as u32, &samples);
        }
        drain_ecu_detections(
            shard,
            self.stream.detections(),
            &self.admitted,
            &mut self.cursor,
            out,
        );
    }

    fn backlog(&self, _shard: usize) -> usize {
        self.stream.backlog()
    }

    fn active_models(&self, _shard: usize) -> usize {
        self.stream.active_models()
    }

    fn set_slot_active(&mut self, slot: Slot, active: bool) {
        self.stream.set_model_active(slot.local, active);
    }

    fn attach_probe(&mut self, probe: Probe) {
        self.stream.enable_profiling();
        self.probe = Some(probe);
    }

    fn finish(mut self, out: &mut Vec<ShardVerdict>) -> Result<Vec<ShardTotals>, CoreError> {
        let report = self.stream.try_finish()?;
        if let Some(probe) = &self.probe {
            // Samples from the trailing DMA flush land in the report.
            record_stage_samples(probe, 0, &report.stage_samples);
        }
        drain_ecu_detections(0, &report.detections, &self.admitted, &mut self.cursor, out);
        Ok(vec![ShardTotals {
            dropped: report.dropped,
            serviced: report.detections.len(),
            energy: Some(EnergyStats {
                mean_power_w: report.mean_power_w,
                energy_per_message_j: report.energy_per_message_j,
            }),
            busy_wall: None,
        }])
    }
}

// --------------------------------------------------------------------
// Fleet backend
// --------------------------------------------------------------------

/// The cross-ECU substrate: one compiled [`FleetDeployment`] served
/// fleet-wide, every backbone frame reaching each shard through that
/// shard's gateway port ([`SegmentForwarder`]: processing delay +
/// far-segment serialisation — no free broadcast).
///
/// Fresh ECUs are built per session, so one backend supports any number
/// of (possibly concurrent, via [`ServeHarness::sweep`]) replays.
///
/// # Example
///
/// ```no_run
/// use canids_core::prelude::*;
/// use canids_core::serve::{FleetBackend, ReplayConfig, ServeHarness};
///
/// let bundles = vec![/* DetectorBundle::new(...) */];
/// let plan = FleetPlan::build(&bundles, &FleetConfig::new(vec![BoardSpec::zcu104("a")]))?;
/// let deployment = plan.deploy(&bundles, &CompileConfig::default())?;
/// let capture = IdsPipeline::new(PipelineConfig::dos().quick()).generate_capture();
/// let mut harness = ServeHarness::new(FleetBackend::new(&deployment));
/// let report = harness.replay(&capture, &ReplayConfig::default())?;
/// assert_eq!(report.boards.len(), 1);
/// # Ok::<(), canids_core::CoreError>(())
/// ```
pub struct FleetBackend<'d> {
    deployment: &'d FleetDeployment,
    ecus: Vec<IdsEcu>,
}

impl std::fmt::Debug for FleetBackend<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetBackend")
            .field("shards", &self.deployment.shards.len())
            .finish_non_exhaustive()
    }
}

impl<'d> FleetBackend<'d> {
    /// A backend over a compiled fleet.
    pub fn new(deployment: &'d FleetDeployment) -> Self {
        FleetBackend {
            deployment,
            ecus: Vec::new(),
        }
    }
}

impl ServeBackend for FleetBackend<'_> {
    type Session<'s>
        = FleetSession<'s>
    where
        Self: 's;

    fn label(&self) -> String {
        "fleet".to_owned()
    }

    fn models(&self) -> usize {
        self.deployment.models()
    }

    fn open(&mut self, config: &ReplayConfig) -> Result<FleetSession<'_>, CoreError> {
        let m = self.deployment.shards.len();
        if m == 0 {
            return Err(CoreError::EmptyFleet);
        }
        let n_models = self.deployment.models();
        let priorities: Vec<u32> = config
            .admission
            .priorities()
            .map(<[u32]>::to_vec)
            .unwrap_or_else(|| vec![0; n_models]);

        // Warm standbys exist only under Rebalance.
        let (extra_ips, standbys) = if matches!(config.admission, AdmissionPolicy::Rebalance { .. })
        {
            crate::fleet::place_standbys(self.deployment, &priorities)
        } else {
            (vec![Vec::new(); m], vec![None; n_models])
        };

        self.ecus = self
            .deployment
            .shards
            .iter()
            .enumerate()
            .map(|(b, shard)| {
                crate::fleet::build_shard_ecu(shard, &extra_ips[b], config.ecu_for(b))
            })
            .collect::<Result<_, _>>()?;
        let mut sessions: Vec<EcuStream<'_>> = self.ecus.iter_mut().map(IdsEcu::stream).collect();
        for sb in standbys.iter().flatten() {
            sessions[sb.shard].set_model_active(sb.local, false);
        }

        let mut model_names = vec![String::new(); n_models];
        for shard in &self.deployment.shards {
            for (local, &fleet_idx) in shard.members.iter().enumerate() {
                model_names[fleet_idx] = format!("{}-ids-{fleet_idx}", shard.kinds[local].slug());
            }
        }
        let topology = ServeTopology {
            models: n_models,
            homes: self.deployment.locations.clone(),
            standbys,
            model_names,
            shard_names: self
                .deployment
                .shards
                .iter()
                .map(|s| s.spec.name.clone())
                .collect(),
            shard_models: self.deployment.shards.iter().map(|s| s.ips.len()).collect(),
            queue_depths: (0..m)
                .map(|b| config.ecu_for(b).queue_depth.max(1))
                .collect(),
        };
        let wire = config.wire_bitrate();
        let transport = match &config.transport {
            FleetTransport::Analytic => FleetTransportState::Analytic(
                (0..m)
                    .map(|_| SegmentForwarder::new(wire, config.gateway_delay))
                    .collect(),
            ),
            FleetTransport::EventDriven(net_config) => FleetTransportState::EventDriven(Box::new(
                FleetNet::single_backbone(m, wire, config.gateway_delay, net_config),
            )),
        };
        Ok(FleetSession {
            sessions,
            transport,
            net_dropped: vec![0; m],
            admitted: vec![Vec::new(); m],
            cursors: vec![0; m],
            topology,
            probe: None,
        })
    }
}

/// The fleet session's frame transport state (see [`FleetTransport`]).
enum FleetTransportState {
    Analytic(Vec<SegmentForwarder>),
    EventDriven(Box<FleetNet>),
}

/// An open [`FleetBackend`] session (see [`ServeSession`]).
///
/// # Example
///
/// ```no_run
/// use canids_core::prelude::*;
/// use canids_core::serve::{FleetBackend, ReplayConfig, ServeBackend, ServeSession};
///
/// let bundles = vec![/* DetectorBundle::new(...) */];
/// let plan = FleetPlan::build(&bundles, &FleetConfig::new(vec![BoardSpec::zcu104("a")]))?;
/// let deployment = plan.deploy(&bundles, &CompileConfig::default())?;
/// let mut backend = FleetBackend::new(&deployment);
/// let session = backend.open(&ReplayConfig::default())?;
/// assert_eq!(session.topology().shards(), 1);
/// # Ok::<(), canids_core::CoreError>(())
/// ```
pub struct FleetSession<'a> {
    sessions: Vec<EcuStream<'a>>,
    transport: FleetTransportState,
    /// Frames the network transport lost per shard, before the ECU.
    net_dropped: Vec<u64>,
    admitted: Vec<Vec<usize>>,
    cursors: Vec<usize>,
    topology: ServeTopology,
    probe: Option<Probe>,
}

impl std::fmt::Debug for FleetSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetSession")
            .field("shards", &self.sessions.len())
            .finish_non_exhaustive()
    }
}

impl ServeSession for FleetSession<'_> {
    fn topology(&self) -> &ServeTopology {
        &self.topology
    }

    fn push_shard(
        &mut self,
        shard: usize,
        ordinal: usize,
        rec: &LabeledFrame,
    ) -> Result<ShardPush, CoreError> {
        let encoder = IdBitsPayloadBits;
        let featurize = |f: &CanFrame| encoder.encode(f);
        let delivered = match &mut self.transport {
            FleetTransportState::Analytic(forwarders) => {
                forwarders[shard].forward(rec.timestamp, &rec.frame)
            }
            FleetTransportState::EventDriven(net) => {
                match net.deliver(shard, rec.timestamp, rec.frame) {
                    NetOutcome::Delivered(t) => t,
                    NetOutcome::Dropped(_) => {
                        // Lost before the board: the typed reason is in
                        // the net drop log and the gateway counters.
                        self.net_dropped[shard] += 1;
                        return Ok(ShardPush {
                            delivered: rec.timestamp,
                            admitted: false,
                        });
                    }
                }
            }
        };
        if let Some(probe) = &self.probe {
            probe.record(shard as u32, Stage::GatewayHop, rec.timestamp, delivered);
        }
        let before = self.sessions[shard].dropped();
        self.sessions[shard].push(delivered, rec.frame, &featurize)?;
        let admitted = self.sessions[shard].dropped() == before;
        if admitted {
            self.admitted[shard].push(ordinal);
        }
        Ok(ShardPush {
            delivered,
            admitted,
        })
    }

    fn drain_verdicts(&mut self, shard: usize, out: &mut Vec<ShardVerdict>) {
        if let Some(probe) = self.probe.clone() {
            let mut samples = Vec::new();
            self.sessions[shard].take_stage_samples(&mut samples);
            record_stage_samples(&probe, shard as u32, &samples);
        }
        drain_ecu_detections(
            shard,
            self.sessions[shard].detections(),
            &self.admitted[shard],
            &mut self.cursors[shard],
            out,
        );
    }

    fn backlog(&self, shard: usize) -> usize {
        self.sessions[shard].backlog()
    }

    fn active_models(&self, shard: usize) -> usize {
        self.sessions[shard].active_models()
    }

    fn set_slot_active(&mut self, slot: Slot, active: bool) {
        self.sessions[slot.shard].set_model_active(slot.local, active);
    }

    fn network(&mut self) -> (Vec<GatewayLoad>, Vec<FleetEvent>) {
        match &mut self.transport {
            FleetTransportState::Analytic(_) => (Vec::new(), Vec::new()),
            FleetTransportState::EventDriven(net) => {
                net.finish();
                let events = net
                    .outage_windows()
                    .iter()
                    .map(|&(board, start, until)| FleetEvent {
                        time: start,
                        board,
                        model: 0,
                        action: FleetAction::GatewayDark { until },
                    })
                    .collect();
                (net.gateway_loads(), events)
            }
        }
    }

    fn attach_probe(&mut self, probe: Probe) {
        for session in &mut self.sessions {
            session.enable_profiling();
        }
        self.probe = Some(probe);
    }

    fn finish(self, out: &mut Vec<ShardVerdict>) -> Result<Vec<ShardTotals>, CoreError> {
        let FleetSession {
            sessions,
            net_dropped,
            admitted,
            mut cursors,
            probe,
            ..
        } = self;
        let mut totals = Vec::with_capacity(sessions.len());
        for (b, session) in sessions.into_iter().enumerate() {
            let report = session.try_finish()?;
            if let Some(probe) = &probe {
                // Samples from the trailing DMA flush land in the report.
                record_stage_samples(probe, b as u32, &report.stage_samples);
            }
            drain_ecu_detections(b, &report.detections, &admitted[b], &mut cursors[b], out);
            debug_assert_eq!(report.detections.len(), admitted[b].len());
            totals.push(ShardTotals {
                dropped: report.dropped + net_dropped[b],
                serviced: report.detections.len(),
                energy: Some(EnergyStats {
                    mean_power_w: report.mean_power_w,
                    energy_per_message_j: report.energy_per_message_j,
                }),
                busy_wall: None,
            });
        }
        Ok(totals)
    }
}

// --------------------------------------------------------------------
// Reports
// --------------------------------------------------------------------

/// One board's (shard's) share of a [`ServeReport`].
///
/// # Example
///
/// ```no_run
/// use canids_core::serve::BoardServeReport;
///
/// fn busiest(boards: &[BoardServeReport]) -> Option<&BoardServeReport> {
///     boards.iter().max_by_key(|b| b.serviced)
/// }
/// ```
#[derive(Debug, Clone)]
pub struct BoardServeReport {
    /// Board instance name.
    pub board: String,
    /// Models homed on this board.
    pub models: usize,
    /// Frames offered to this board (every backbone frame is forwarded).
    pub offered: usize,
    /// Frames serviced.
    pub serviced: usize,
    /// Frames dropped at this board's FIFO.
    pub dropped: u64,
    /// Verdict latency from backbone arrival (gateway forwarding
    /// included on the fleet backend).
    pub latency: LatencyStats,
    /// Board power/energy (absent on the software backend).
    pub energy: Option<EnergyStats>,
}

/// One model's share of a [`ServeReport`] — the measured
/// detection-contribution record value-driven admission reads.
///
/// # Example
///
/// ```no_run
/// use canids_core::serve::ModelServeReport;
///
/// fn useless(models: &[ModelServeReport]) -> impl Iterator<Item = &ModelServeReport> {
///     models.iter().filter(|m| m.confirmed_positives == 0)
/// }
/// ```
#[derive(Debug, Clone)]
pub struct ModelServeReport {
    /// Fleet model index (bundle order).
    pub model: usize,
    /// Display name.
    pub name: String,
    /// Home slot.
    pub home: Slot,
    /// Frames this model was consulted for.
    pub consulted: usize,
    /// Frames this model flagged.
    pub flagged: usize,
    /// Flagged frames whose ground truth was an attack — the raw
    /// detection-contribution count.
    pub confirmed_positives: usize,
    /// Per-model confusion matrix over consulted frames.
    pub cm: ConfusionMatrix,
}

/// The composable outcome of one replay through any [`ServeBackend`].
///
/// # Example
///
/// ```no_run
/// use canids_core::prelude::*;
/// use canids_core::serve::{ReplayConfig, ServeHarness, SoftwareBackend};
///
/// let report = IdsPipeline::new(PipelineConfig::dos().quick()).run()?;
/// let capture = IdsPipeline::new(PipelineConfig::dos().quick()).generate_capture();
/// let mut harness = ServeHarness::new(SoftwareBackend::single(report.detector.int_mlp.clone()));
/// let serve = harness.replay(&capture, &ReplayConfig::default())?;
/// println!(
///     "{}: {} offered, {} dropped, p99 {}",
///     serve.backend, serve.offered, serve.dropped, serve.latency.p99
/// );
/// # Ok::<(), canids_core::CoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Scenario name (defaults to the backend label).
    pub scenario: String,
    /// Backend label (`"software"`, `"ecu"`, `"fleet"`).
    pub backend: String,
    /// Base scheduling-policy label.
    pub sched: String,
    /// Admission-policy label.
    pub admission: String,
    /// Effective wire bitrate (bits per second).
    pub bitrate_bps: u32,
    /// Frames offered on the backbone.
    pub offered: usize,
    /// Frames at least one shard serviced.
    pub serviced: usize,
    /// Frames dropped, summed over every shard's FIFO.
    pub dropped: u64,
    /// First backbone arrival.
    pub first_arrival: SimTime,
    /// Last backbone arrival.
    pub last_arrival: SimTime,
    /// Offered load in frames/s over the capture's own span (external
    /// captures carry epoch timestamps, so an absolute-time denominator
    /// would be nonsense).
    pub offered_fps: f64,
    /// Measured host service capacity in frames/s (software backend
    /// only: serviced ÷ busy wall time).
    pub sustained_fps: Option<f64>,
    /// Fused verdict latency: per frame, the slowest serving shard's
    /// verdict measured from backbone arrival.
    pub latency: LatencyStats,
    /// Frames any shard flagged.
    pub flagged: usize,
    /// Frames serviced by every shard (full coverage).
    pub fully_covered: usize,
    /// Fused confusion matrix over serviced frames.
    pub cm: ConfusionMatrix,
    /// Summed power/energy across the fleet (absent on the software
    /// backend).
    pub energy: Option<EnergyStats>,
    /// Per-board breakdown, in board order.
    pub boards: Vec<BoardServeReport>,
    /// Per-model breakdown, in fleet bundle order.
    pub per_model: Vec<ModelServeReport>,
    /// Admission events (sheds, re-admissions, migrations) in time
    /// order, followed by any network fault events (gateway dark
    /// windows) from the event-driven transport.
    pub events: Vec<FleetEvent>,
    /// Per-gateway queue/occupancy section. Empty for non-fleet
    /// backends and for [`FleetTransport::Analytic`], which has no
    /// buffer model.
    pub gateways: Vec<GatewayLoad>,
    /// Fused per-frame verdicts: backbone arrival and whether any shard
    /// flagged it, for frames at least one shard serviced.
    pub verdicts: Vec<(SimTime, bool)>,
    /// Telemetry captured during the replay: per-stage spans plus the
    /// metrics snapshot. `None` unless the replay was configured with
    /// [`ReplayConfig::with_telemetry`]; sharded replays merge per-shard
    /// reports in strict shard order.
    pub telemetry: Option<TelemetryReport>,
}

impl ServeReport {
    /// `true` when no shard dropped a frame.
    pub fn keeps_up(&self) -> bool {
        self.dropped == 0
    }

    /// The measured busy wall time behind [`sustained_fps`] (software
    /// backends only): `serviced ÷ sustained_fps`. `None` where there is
    /// no host-capacity figure (simulated backends, empty replays).
    ///
    /// [`sustained_fps`]: ServeReport::sustained_fps
    pub fn busy_wall(&self) -> Option<Duration> {
        self.sustained_fps
            .filter(|&f| f > 0.0)
            .map(|f| Duration::from_secs_f64(self.serviced as f64 / f))
    }

    /// Shed events (excluding re-admissions and migrations).
    pub fn shed_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| e.action == FleetAction::Shed)
            .count()
    }

    /// Column headers matching [`ServeReport::table_row`].
    pub fn table_header() -> [&'static str; 8] {
        [
            "Scenario",
            "Backend",
            "Offered fps",
            "p50",
            "p99",
            "Drops",
            "Events",
            "Keeps up",
        ]
    }

    /// This report as one formatted row for the harness tables.
    pub fn table_row(&self) -> Vec<String> {
        vec![
            self.scenario.clone(),
            self.backend.clone(),
            format!("{:.0}", self.offered_fps),
            format!("{:.1} us", self.latency.p50.as_micros_f64()),
            format!("{:.1} us", self.latency.p99.as_micros_f64()),
            format!("{}", self.dropped),
            format!("{}", self.events.len()),
            if self.keeps_up() { "yes" } else { "NO" }.to_owned(),
        ]
    }
}

// --------------------------------------------------------------------
// Admission governance (harness-side)
// --------------------------------------------------------------------

/// Per-model replay bookkeeping: where the model may run and where it
/// currently runs (`None` while shed or mid-migration).
#[derive(Debug, Clone, Copy)]
struct ModelState {
    home: Slot,
    standby: Option<Slot>,
    serving: Option<Slot>,
}

impl ModelState {
    /// The slot a migration would move this model to, given where it
    /// currently serves.
    fn other_slot(&self, from: Slot) -> Option<Slot> {
        match self.standby {
            Some(sb) if sb != from => Some(sb),
            _ if self.home != from => Some(self.home),
            _ => None,
        }
    }
}

/// Per-shard overload detector state.
#[derive(Debug, Clone, Default)]
struct ShardCtl {
    hot: u32,
    cool: u32,
    /// Models shed from this shard: (fleet model, slot it served at).
    shed: Vec<(usize, Slot)>,
}

/// Windowed confirmed-positive scorer behind
/// [`AdmissionPolicy::ShedLowestMeasuredValue`].
#[derive(Debug)]
struct ValueScore {
    window: usize,
    /// Per model, ordinals of recent confirmed positives (monotone).
    hits: Vec<VecDeque<usize>>,
}

impl ValueScore {
    fn new(window: usize, models: usize) -> Self {
        ValueScore {
            window: window.max(1),
            hits: vec![VecDeque::new(); models],
        }
    }

    fn record(&mut self, model: usize, ordinal: usize) {
        self.hits[model].push_back(ordinal);
    }

    /// Expires hits older than the window relative to `current`.
    fn expire(&mut self, current: usize) {
        for dq in &mut self.hits {
            while dq.front().is_some_and(|&o| o + self.window <= current) {
                dq.pop_front();
            }
        }
    }

    fn score(&self, model: usize) -> usize {
        self.hits[model].len()
    }
}

/// The harness-side admission controller: watches per-shard backlog
/// hysteresis and sheds / re-admits / migrates models through the
/// session's activation interface — the logic that used to live inside
/// `fleet_line_rate`, now shared by every backend.
struct AdmissionController {
    admission: AdmissionPolicy,
    priorities: Vec<u32>,
    thresholds: OverloadThresholds,
    migration_delay: SimTime,
    states: Vec<ModelState>,
    ctl: Vec<ShardCtl>,
    pending_activation: Vec<(SimTime, usize, Slot)>,
    events: Vec<FleetEvent>,
    value: Option<ValueScore>,
    depths: Vec<usize>,
}

impl AdmissionController {
    fn new(config: &ReplayConfig, topology: &ServeTopology) -> Self {
        let n = topology.models;
        let priorities = config
            .admission
            .priorities()
            .map(<[u32]>::to_vec)
            .unwrap_or_else(|| vec![0; n]);
        let value = match config.admission {
            AdmissionPolicy::ShedLowestMeasuredValue { window, .. } => {
                Some(ValueScore::new(window, n))
            }
            _ => None,
        };
        AdmissionController {
            admission: config.admission.clone(),
            priorities,
            thresholds: config.thresholds,
            migration_delay: config.migration_delay,
            states: topology
                .homes
                .iter()
                .zip(&topology.standbys)
                .map(|(&home, &standby)| ModelState {
                    home,
                    standby,
                    serving: Some(home),
                })
                .collect(),
            ctl: vec![ShardCtl::default(); topology.shards()],
            pending_activation: Vec::new(),
            events: Vec::new(),
            value,
            depths: topology.queue_depths.clone(),
        }
    }

    /// Completes due migrations: the standby goes live.
    fn activate_due<S: ServeSession>(&mut self, arrival: SimTime, session: &mut S) {
        let states = &mut self.states;
        self.pending_activation.retain(|&(t, model, slot)| {
            if t <= arrival {
                session.set_slot_active(slot, true);
                states[model].serving = Some(slot);
                false
            } else {
                true
            }
        });
    }

    /// Records one shard verdict's contribution to the measured value
    /// scores (confirmed positives only).
    fn observe(&mut self, model: usize, ordinal: usize, flagged: bool, truth: bool) {
        if let Some(value) = &mut self.value {
            if flagged && truth {
                value.record(model, ordinal);
            }
        }
    }

    /// Expires measured-value hits against the current frame ordinal.
    fn tick(&mut self, current_ordinal: usize) {
        if let Some(value) = &mut self.value {
            value.expire(current_ordinal);
        }
    }

    /// The (lower = shed first) victim ranking of a model. Static
    /// policies rank by priority with later duplicates first on ties —
    /// the measured policy ranks by windowed score, with static
    /// priority then index breaking ties.
    fn shed_key(&self, model: usize) -> (u64, u32, std::cmp::Reverse<usize>) {
        let score = self
            .value
            .as_ref()
            .map_or(u64::from(self.priorities[model]), |v| v.score(model) as u64);
        let tie = if self.value.is_some() {
            self.priorities[model]
        } else {
            0
        };
        (score, tie, std::cmp::Reverse(model))
    }

    /// Governs shard `b` after one arrival was delivered at `delivered`.
    fn govern<S: ServeSession>(&mut self, b: usize, delivered: SimTime, session: &mut S) {
        if self.admission == AdmissionPolicy::DropFrames {
            return;
        }
        let th = self.thresholds;
        let frac = session.backlog(b) as f64 / self.depths[b] as f64;
        if frac >= th.high_frac {
            self.ctl[b].hot += 1;
            self.ctl[b].cool = 0;
        } else if frac <= th.low_frac {
            self.ctl[b].cool += 1;
            self.ctl[b].hot = 0;
        } else {
            self.ctl[b].hot = 0;
            self.ctl[b].cool = 0;
        }

        if self.ctl[b].hot >= th.shed_sustain {
            self.ctl[b].hot = 0;
            // Victim: the lowest-value model currently served here. A
            // shard never gives up its last model.
            let victim = self
                .states
                .iter()
                .enumerate()
                .filter_map(|(mdl, st)| match st.serving {
                    Some(sl) if sl.shard == b => Some((mdl, sl)),
                    _ => None,
                })
                .min_by_key(|&(mdl, _)| self.shed_key(mdl));
            let Some((victim, slot)) = victim else {
                return;
            };
            if session.active_models(b) <= 1 {
                return;
            }
            let migrate_to = if matches!(self.admission, AdmissionPolicy::Rebalance { .. }) {
                self.states[victim].other_slot(slot).filter(|dest| {
                    let dest_frac =
                        session.backlog(dest.shard) as f64 / self.depths[dest.shard] as f64;
                    dest_frac < th.high_frac
                })
            } else {
                None
            };
            session.set_slot_active(slot, false);
            self.states[victim].serving = None;
            match migrate_to {
                Some(dest) => {
                    self.pending_activation
                        .push((delivered + self.migration_delay, victim, dest));
                    self.events.push(FleetEvent {
                        time: delivered,
                        board: b,
                        model: victim,
                        action: FleetAction::Migrate { to: dest.shard },
                    });
                }
                None => {
                    self.ctl[b].shed.push((victim, slot));
                    self.events.push(FleetEvent {
                        time: delivered,
                        board: b,
                        model: victim,
                        action: FleetAction::Shed,
                    });
                }
            }
        } else if self.ctl[b].cool >= th.readmit_sustain && !self.ctl[b].shed.is_empty() {
            self.ctl[b].cool = 0;
            // Load has subsided: the most valuable shed model comes
            // back first.
            let pos = {
                let shed = &self.ctl[b].shed;
                shed.iter()
                    .enumerate()
                    .max_by_key(|&(_, &(mdl, _))| self.shed_key(mdl))
                    .map(|(pos, _)| pos)
                    // lint:allow(panic-in-lib): the enclosing branch runs only when shed is non-empty
                    .expect("shed list checked non-empty")
            };
            let (model, slot) = self.ctl[b].shed.remove(pos);
            session.set_slot_active(slot, true);
            self.states[model].serving = Some(slot);
            self.events.push(FleetEvent {
                time: delivered,
                board: b,
                model,
                action: FleetAction::Readmit,
            });
        }
    }
}

// --------------------------------------------------------------------
// Aggregation
// --------------------------------------------------------------------

#[derive(Debug, Clone, Copy, Default)]
struct FusedEntry {
    flagged: bool,
    done: SimTime,
    count: usize,
    model_flags: u64,
    consulted: u64,
}

#[derive(Debug, Clone, Default)]
struct ModelAccum {
    consulted: usize,
    flagged: usize,
    confirmed: usize,
    cm: ConfusionMatrix,
}

/// Replay-wide accounting: arrivals/truths, per-shard latency vectors,
/// per-model contribution, and the fused per-ordinal verdict map.
struct Aggregator {
    arrivals: Vec<SimTime>,
    truths: Vec<bool>,
    /// Shards that have not yet resolved (serviced or dropped) each
    /// ordinal; a fused verdict is emitted when this reaches zero.
    remaining: Vec<u8>,
    fused: BTreeMap<usize, FusedEntry>,
    next_emit: usize,
    shard_lat: Vec<Vec<SimTime>>,
    shard_serviced: Vec<usize>,
    per_model: Vec<ModelAccum>,
    /// `slot_model[shard][local]` → fleet model index.
    slot_model: Vec<Vec<Option<usize>>>,
    shards: usize,
    cm: ConfusionMatrix,
    flagged: usize,
    fully_covered: usize,
}

impl Aggregator {
    fn new(topology: &ServeTopology) -> Self {
        let shards = topology.shards();
        // Invert home/standby slots into a per-shard local map.
        let mut slot_model: Vec<Vec<Option<usize>>> = (0..shards).map(|_| Vec::new()).collect();
        let mut place = |slot: Slot, model: usize| {
            let locals = &mut slot_model[slot.shard];
            if locals.len() <= slot.local {
                locals.resize(slot.local + 1, None);
            }
            locals[slot.local] = Some(model);
        };
        for (model, &home) in topology.homes.iter().enumerate() {
            place(home, model);
        }
        for (model, standby) in topology.standbys.iter().enumerate() {
            if let Some(sb) = standby {
                place(*sb, model);
            }
        }
        Aggregator {
            arrivals: Vec::new(),
            truths: Vec::new(),
            remaining: Vec::new(),
            fused: BTreeMap::new(),
            next_emit: 0,
            shard_lat: vec![Vec::new(); shards],
            shard_serviced: vec![0; shards],
            per_model: vec![ModelAccum::default(); topology.models],
            slot_model,
            shards,
            cm: ConfusionMatrix::new(),
            flagged: 0,
            fully_covered: 0,
        }
    }

    fn note_arrival(&mut self, rec: &LabeledFrame) -> usize {
        let ordinal = self.arrivals.len();
        self.arrivals.push(rec.timestamp);
        self.truths.push(rec.label.is_attack());
        self.remaining.push(self.shards as u8);
        ordinal
    }

    fn note_drop(&mut self, ordinal: usize) {
        self.remaining[ordinal] -= 1;
    }

    /// Maps a board-local bitmask to fleet bundle order.
    fn to_fleet_mask(&self, shard: usize, local_mask: u64) -> u64 {
        let mut fleet = 0u64;
        let locals = &self.slot_model[shard];
        let mut mask = local_mask;
        while mask != 0 {
            let k = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            if let Some(Some(m)) = locals.get(k) {
                if *m < 64 {
                    fleet |= 1 << m;
                }
            }
        }
        fleet
    }

    /// Absorbs one shard verdict into the fused/per-shard/per-model
    /// accounting and feeds confirmed-positive observations to the
    /// admission controller's value scorer.
    fn absorb(&mut self, v: &ShardVerdict, ctl: &mut AdmissionController) {
        let truth = self.truths[v.ordinal];
        let fleet_flags = self.to_fleet_mask(v.shard, v.model_flags);
        let fleet_consulted = self.to_fleet_mask(v.shard, v.active_mask);
        let e = self.fused.entry(v.ordinal).or_default();
        e.flagged |= v.flagged;
        e.done = e.done.max(v.completed_at);
        e.count += 1;
        e.model_flags |= fleet_flags;
        e.consulted |= fleet_consulted;
        self.remaining[v.ordinal] -= 1;
        self.shard_lat[v.shard].push(v.completed_at.saturating_sub(self.arrivals[v.ordinal]));
        self.shard_serviced[v.shard] += 1;

        let mut mask = fleet_consulted;
        while mask != 0 {
            let m = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            let flagged = fleet_flags & (1 << m) != 0;
            let acc = &mut self.per_model[m];
            acc.consulted += 1;
            acc.cm.record(flagged, truth);
            if flagged {
                acc.flagged += 1;
                if truth {
                    acc.confirmed += 1;
                }
            }
            ctl.observe(m, v.ordinal, flagged, truth);
        }
    }

    /// Emits fused verdicts whose every shard has resolved, in ordinal
    /// order.
    fn emit_ready(&mut self, sink: &mut dyn VerdictSink) {
        while self.next_emit < self.remaining.len() && self.remaining[self.next_emit] == 0 {
            let ordinal = self.next_emit;
            self.next_emit += 1;
            let Some(&e) = self.fused.get(&ordinal) else {
                continue; // dropped by every shard: no verdict
            };
            let truth = self.truths[ordinal];
            self.cm.record(e.flagged, truth);
            if e.flagged {
                self.flagged += 1;
            }
            if e.count == self.shards {
                self.fully_covered += 1;
            }
            sink.verdict(&Verdict {
                ordinal,
                arrival: self.arrivals[ordinal],
                completed_at: e.done,
                flagged: e.flagged,
                truth_attack: truth,
                model_flags: e.model_flags,
                consulted: e.consulted,
                boards: e.count,
            });
        }
    }
}

// --------------------------------------------------------------------
// Harness
// --------------------------------------------------------------------

/// The single entry point of the serving API: replays captures through
/// any [`ServeBackend`] under one [`ReplayConfig`], streaming
/// [`Verdict`]s to an optional [`VerdictSink`] and aggregating one
/// [`ServeReport`].
///
/// # Example
///
/// ```no_run
/// use canids_core::prelude::*;
/// use canids_core::serve::{Pacing, ReplayConfig, ServeHarness, SoftwareBackend};
///
/// let trained = IdsPipeline::new(PipelineConfig::dos().quick()).run()?;
/// let capture = IdsPipeline::new(PipelineConfig::dos().quick()).generate_capture();
/// let mut harness = ServeHarness::new(SoftwareBackend::single(trained.detector.int_mlp.clone()));
/// let report = harness.replay(
///     &capture,
///     &ReplayConfig::default().with_pacing(Pacing::Saturated),
/// )?;
/// assert_eq!(report.offered, capture.len());
/// # Ok::<(), canids_core::CoreError>(())
/// ```
#[derive(Debug)]
pub struct ServeHarness<B: ServeBackend> {
    backend: B,
}

impl<B: ServeBackend> ServeHarness<B> {
    /// Wraps a backend.
    pub fn new(backend: B) -> Self {
        ServeHarness { backend }
    }

    /// The wrapped backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Unwraps the backend.
    pub fn into_inner(self) -> B {
        self.backend
    }

    /// Replays `capture` under `config`, discarding the verdict stream.
    ///
    /// # Errors
    ///
    /// [`CoreError::PriorityMismatch`] when the admission policy's
    /// priorities do not cover every model; backend/driver errors
    /// otherwise.
    pub fn replay(
        &mut self,
        capture: &Dataset,
        config: &ReplayConfig,
    ) -> Result<ServeReport, CoreError> {
        self.replay_with(capture, config, &mut NullSink)
    }

    /// Replays `capture` under `config`, delivering every fused
    /// per-frame [`Verdict`] to `sink` in ordinal order.
    ///
    /// # Errors
    ///
    /// [`CoreError::PriorityMismatch`] when the admission policy's
    /// priorities do not cover every model; backend/driver errors
    /// otherwise.
    pub fn replay_with(
        &mut self,
        capture: &Dataset,
        config: &ReplayConfig,
        sink: &mut dyn VerdictSink,
    ) -> Result<ServeReport, CoreError> {
        if let Some(p) = config.admission.priorities() {
            let expected = self.backend.models();
            if p.len() != expected {
                return Err(CoreError::PriorityMismatch {
                    expected,
                    actual: p.len(),
                });
            }
        }
        let backend_label = self.backend.label();
        let mut session = self.backend.open(config)?;
        let probe = config.telemetry.as_ref().map(Probe::new);
        if let Some(p) = &probe {
            session.attach_probe(p.clone());
        }
        let topology = session.topology().clone();
        let shards = topology.shards();
        let mut ctl = AdmissionController::new(config, &topology);
        let mut agg = Aggregator::new(&topology);
        let mut fresh: Vec<ShardVerdict> = Vec::new();

        if let Some(first) = capture.records().first() {
            session.warmup(first);
        }
        let records: Box<dyn Iterator<Item = LabeledFrame> + '_> = match config.pacing {
            Pacing::Saturated | Pacing::FdClass => {
                Box::new(paced_records(capture, config.wire_bitrate()))
            }
            Pacing::AsRecorded => Box::new(capture.iter().copied()),
        };
        for rec in records {
            let ordinal = agg.note_arrival(&rec);
            ctl.tick(ordinal);
            ctl.activate_due(rec.timestamp, &mut session);
            for b in 0..shards {
                let push = session.push_shard(b, ordinal, &rec)?;
                if !push.admitted {
                    agg.note_drop(ordinal);
                }
                fresh.clear();
                session.drain_verdicts(b, &mut fresh);
                for v in &fresh {
                    agg.absorb(v, &mut ctl);
                }
                let before = ctl.events.len();
                ctl.govern(b, push.delivered, &mut session);
                if let Some(p) = &probe {
                    note_admission_events(p, b as u32, &ctl.events[before..]);
                }
            }
            agg.emit_ready(sink);
        }
        let (gateways, net_events) = session.network();
        fresh.clear();
        let totals = session.finish(&mut fresh)?;
        for v in &fresh {
            agg.absorb(v, &mut ctl);
        }
        agg.emit_ready(sink);

        let telemetry = probe.map(|p| {
            p.add(Counter::FramesOffered, agg.arrivals.len() as u64);
            p.add(
                Counter::FramesDropped,
                totals.iter().map(|t| t.dropped).sum(),
            );
            p.add(Counter::FramesServiced, agg.fused.len() as u64);
            p.take_report()
        });
        let mut report = finalize(
            backend_label,
            config,
            &topology,
            agg,
            ctl,
            &totals,
            gateways,
            net_events,
        );
        report.telemetry = telemetry;
        Ok(report)
    }

    /// Replays every scenario concurrently on scoped threads (capture
    /// synthesis *and* replay run per scenario thread, like the
    /// bit-width DSE sweep), each thread serving through a fresh
    /// backend from `factory`. Results come back in scenario order.
    ///
    /// # Errors
    ///
    /// The first factory or replay error, if any.
    ///
    /// # Example
    ///
    /// ```no_run
    /// use canids_core::prelude::*;
    /// use canids_core::serve::{
    ///     CaptureSource, ReplayConfig, ServeHarness, ServeScenario, SoftwareBackend,
    /// };
    ///
    /// let trained = IdsPipeline::new(PipelineConfig::dos().quick()).run()?;
    /// let model = trained.detector.int_mlp.clone();
    /// let scenarios = vec![ServeScenario {
    ///     name: "dos @ 1M".into(),
    ///     source: CaptureSource::Generate(TrafficConfig::default()),
    ///     config: ReplayConfig::default(),
    /// }];
    /// let reports =
    ///     ServeHarness::sweep(|| Ok(SoftwareBackend::single(model.clone())), &scenarios)?;
    /// assert_eq!(reports.len(), 1);
    /// # Ok::<(), canids_core::CoreError>(())
    /// ```
    pub fn sweep<F>(
        factory: F,
        scenarios: &[ServeScenario<'_>],
    ) -> Result<Vec<ServeReport>, CoreError>
    where
        F: Fn() -> Result<B, CoreError> + Sync,
    {
        crate::par::scoped_map(scenarios, |scenario| {
            let mut harness = ServeHarness::new(factory()?);
            let mut report = match &scenario.source {
                CaptureSource::Generate(tc) => {
                    let capture = DatasetBuilder::new(tc.clone()).build();
                    harness.replay(&capture, &scenario.config)?
                }
                CaptureSource::Capture(capture) => harness.replay(capture, &scenario.config)?,
            };
            report.scenario.clone_from(&scenario.name);
            Ok(report)
        })
        .into_iter()
        .collect()
    }

    /// Replays `capture` sharded across [`ReplayConfig::shards`]
    /// contiguous capture slices, each served by a fresh backend from
    /// `factory` as an independent single-shard replay, on a bounded
    /// pool of [`ReplayConfig::workers`] threads.
    ///
    /// Shard count is the *semantic* knob — each slice re-paces from
    /// time zero, modelling that many parallel serving lanes — and the
    /// worker count is *execution-only*: per-shard results are merged in
    /// shard order (confusion matrices, counts, latency samples,
    /// verdict stream), so the merged [`ServeReport`] is bit-identical
    /// for any pool size. The merged `sustained_fps` is total serviced
    /// frames over the **slowest** shard's busy wall (aggregate capacity
    /// with one core per lane); `offered_fps` spans the overlapping
    /// shard clocks, i.e. it sums the per-lane offered rates.
    ///
    /// With `shards == 1` this is exactly [`replay`](Self::replay).
    ///
    /// # Errors
    ///
    /// The first factory or replay error, if any.
    pub fn replay_sharded<F>(
        factory: F,
        capture: &Dataset,
        config: &ReplayConfig,
    ) -> Result<ServeReport, CoreError>
    where
        F: Fn() -> Result<B, CoreError> + Sync,
    {
        let shards = config.shards.max(1);
        if shards == 1 {
            return ServeHarness::new(factory()?).replay(capture, config);
        }
        let records = capture.records();
        let n = records.len();
        let slices: Vec<Dataset> = (0..shards)
            .map(|s| Dataset::from_records(records[s * n / shards..(s + 1) * n / shards].to_vec()))
            .collect();
        let shard_config = ReplayConfig {
            shards: 1,
            ..config.clone()
        };
        let workers = config.workers.count(shards);
        let outcomes = crate::par::scoped_map_with(&slices, workers, |slice| {
            let mut verdicts: Vec<Verdict> = Vec::new();
            let report =
                ServeHarness::new(factory()?).replay_with(slice, &shard_config, &mut verdicts)?;
            Ok::<_, CoreError>((report, verdicts))
        });
        let shard_outcomes = outcomes.into_iter().collect::<Result<Vec<_>, _>>()?;
        Ok(merge_sharded(shard_outcomes))
    }
}

/// Folds per-shard replay outcomes into one [`ServeReport`], strictly in
/// shard order so the result is independent of how the shards were
/// scheduled onto worker threads.
fn merge_sharded(shard_outcomes: Vec<(ServeReport, Vec<Verdict>)>) -> ServeReport {
    // lint:allow(panic-in-lib): replay_sharded always passes >= 2 shards
    let first = &shard_outcomes.first().expect("at least one shard").0;
    let mut merged = ServeReport {
        scenario: first.scenario.clone(),
        backend: first.backend.clone(),
        sched: first.sched.clone(),
        admission: first.admission.clone(),
        bitrate_bps: first.bitrate_bps,
        offered: 0,
        serviced: 0,
        dropped: 0,
        first_arrival: SimTime::ZERO,
        last_arrival: SimTime::ZERO,
        offered_fps: 0.0,
        sustained_fps: None,
        latency: LatencyStats::default(),
        flagged: 0,
        fully_covered: 0,
        cm: ConfusionMatrix::new(),
        energy: None,
        boards: Vec::new(),
        per_model: first
            .per_model
            .iter()
            .map(|m| ModelServeReport {
                model: m.model,
                name: m.name.clone(),
                home: m.home,
                consulted: 0,
                flagged: 0,
                confirmed_positives: 0,
                cm: ConfusionMatrix::new(),
            })
            .collect(),
        events: Vec::new(),
        gateways: Vec::new(),
        verdicts: Vec::new(),
        telemetry: None,
    };
    let mut lat: Vec<SimTime> = Vec::new();
    let mut shard_telemetry: Vec<TelemetryReport> = Vec::new();
    let mut first_arrival: Option<SimTime> = None;
    let mut max_busy = Duration::ZERO;
    let mut all_walled = true;
    let mut energy_sum = EnergyStats::default();
    let mut any_energy = false;
    for (s, (report, verdicts)) in shard_outcomes.iter().enumerate() {
        merged.offered += report.offered;
        merged.serviced += report.serviced;
        merged.dropped += report.dropped;
        merged.flagged += report.flagged;
        merged.fully_covered += report.fully_covered;
        merged.cm.merge(&report.cm);
        if report.offered > 0 {
            let fa = first_arrival.get_or_insert(report.first_arrival);
            *fa = (*fa).min(report.first_arrival);
            merged.last_arrival = merged.last_arrival.max(report.last_arrival);
        }
        match report.busy_wall() {
            Some(busy) => max_busy = max_busy.max(busy),
            None => all_walled = false,
        }
        if let Some(e) = report.energy {
            energy_sum.mean_power_w += e.mean_power_w;
            energy_sum.energy_per_message_j += e.energy_per_message_j;
            any_energy = true;
        }
        for (m, acc) in merged.per_model.iter_mut().zip(&report.per_model) {
            m.consulted += acc.consulted;
            m.flagged += acc.flagged;
            m.confirmed_positives += acc.confirmed_positives;
            m.cm.merge(&acc.cm);
        }
        for board in &report.boards {
            merged.boards.push(BoardServeReport {
                board: format!("shard{s}/{}", board.board),
                ..board.clone()
            });
        }
        merged.events.extend(report.events.iter().cloned());
        merged.gateways.extend(report.gateways.iter().cloned());
        merged.verdicts.extend(report.verdicts.iter().copied());
        if let Some(t) = &report.telemetry {
            shard_telemetry.push(t.clone());
        }
        lat.extend(
            verdicts
                .iter()
                .map(|v| v.completed_at.saturating_sub(v.arrival)),
        );
    }
    // Admission events arrive grouped by shard; a stable time sort keeps
    // the merged stream chronological while ties preserve shard order,
    // independent of the worker count.
    merged.events.sort_by_key(|e| e.time);
    if shard_telemetry.len() == shard_outcomes.len() {
        merged.telemetry = Some(TelemetryReport::merge(shard_telemetry));
    }
    merged.first_arrival = first_arrival.unwrap_or(SimTime::ZERO);
    let span = merged.last_arrival.saturating_sub(merged.first_arrival);
    merged.offered_fps = if span > SimTime::ZERO {
        merged.offered as f64 / span.as_secs_f64()
    } else {
        0.0
    };
    merged.sustained_fps = (all_walled && max_busy > Duration::ZERO)
        .then(|| merged.serviced as f64 / max_busy.as_secs_f64());
    merged.energy = any_energy.then_some(energy_sum);
    lat.sort_unstable();
    merged.latency = LatencyStats::from_sorted(&lat);
    merged
}

/// Where a sweep scenario's capture comes from.
///
/// # Example
///
/// ```
/// use canids_core::serve::CaptureSource;
/// use canids_dataset::generator::TrafficConfig;
///
/// let source = CaptureSource::Generate(TrafficConfig::default());
/// assert!(matches!(source, CaptureSource::Generate(_)));
/// ```
#[derive(Debug, Clone)]
pub enum CaptureSource<'a> {
    /// Synthesise the capture on the sweep thread.
    Generate(TrafficConfig),
    /// Replay an existing capture.
    Capture(&'a Dataset),
}

/// One sweep scenario: a capture source plus the replay configuration
/// to serve it under.
///
/// # Example
///
/// ```
/// use canids_core::serve::{CaptureSource, ReplayConfig, ServeScenario};
/// use canids_dataset::generator::TrafficConfig;
///
/// let sc = ServeScenario {
///     name: "normal @ 1M".into(),
///     source: CaptureSource::Generate(TrafficConfig::default()),
///     config: ReplayConfig::default(),
/// };
/// assert_eq!(sc.name, "normal @ 1M");
/// ```
#[derive(Debug, Clone)]
pub struct ServeScenario<'a> {
    /// Scenario name (lands in [`ServeReport::scenario`]).
    pub name: String,
    /// Capture to replay.
    pub source: CaptureSource<'a>,
    /// Replay configuration.
    pub config: ReplayConfig,
}

#[allow(clippy::too_many_arguments)]
fn finalize(
    backend: String,
    config: &ReplayConfig,
    topology: &ServeTopology,
    mut agg: Aggregator,
    ctl: AdmissionController,
    totals: &[ShardTotals],
    gateways: Vec<GatewayLoad>,
    net_events: Vec<FleetEvent>,
) -> ServeReport {
    let offered = agg.arrivals.len();
    let first_arrival = agg.arrivals.first().copied().unwrap_or(SimTime::ZERO);
    let last_arrival = agg.arrivals.last().copied().unwrap_or(SimTime::ZERO);
    let span = last_arrival.saturating_sub(first_arrival);
    let offered_fps = if span > SimTime::ZERO {
        offered as f64 / span.as_secs_f64()
    } else {
        0.0
    };

    let mut boards = Vec::with_capacity(topology.shards());
    let mut total_dropped = 0u64;
    let mut energy_sum = EnergyStats::default();
    let mut any_energy = false;
    let mut busy_wall = Duration::ZERO;
    let mut any_wall = false;
    for (b, totals_b) in totals.iter().enumerate() {
        total_dropped += totals_b.dropped;
        if let Some(e) = totals_b.energy {
            energy_sum.mean_power_w += e.mean_power_w;
            energy_sum.energy_per_message_j += e.energy_per_message_j;
            any_energy = true;
        }
        if let Some(w) = totals_b.busy_wall {
            busy_wall += w;
            any_wall = true;
        }
        boards.push(BoardServeReport {
            board: topology.shard_names[b].clone(),
            models: topology.shard_models[b],
            offered,
            serviced: totals_b.serviced,
            dropped: totals_b.dropped,
            latency: LatencyStats::from_unsorted(std::mem::take(&mut agg.shard_lat[b])),
            energy: totals_b.energy,
        });
    }

    let mut fleet_lat: Vec<SimTime> = agg
        .fused
        .iter()
        .map(|(&ord, e)| e.done.saturating_sub(agg.arrivals[ord]))
        .collect();
    fleet_lat.sort_unstable();
    let verdicts: Vec<(SimTime, bool)> = agg
        .fused
        .iter()
        .map(|(&ord, e)| (agg.arrivals[ord], e.flagged))
        .collect();
    let serviced = verdicts.len();
    let total_serviced: usize = agg.shard_serviced.iter().sum();
    let sustained_fps = if any_wall && busy_wall > Duration::ZERO {
        Some(total_serviced as f64 / busy_wall.as_secs_f64())
    } else {
        None
    };

    let per_model = agg
        .per_model
        .iter()
        .enumerate()
        .map(|(m, acc)| ModelServeReport {
            model: m,
            name: topology.model_names[m].clone(),
            home: topology.homes[m],
            consulted: acc.consulted,
            flagged: acc.flagged,
            confirmed_positives: acc.confirmed,
            cm: acc.cm,
        })
        .collect();

    ServeReport {
        scenario: backend.clone(),
        backend,
        sched: config.ecu.policy.label(),
        admission: config.admission.label().to_owned(),
        bitrate_bps: config.wire_bitrate().bits_per_sec(),
        offered,
        serviced,
        dropped: total_dropped,
        first_arrival,
        last_arrival,
        offered_fps,
        sustained_fps,
        latency: LatencyStats::from_sorted(&fleet_lat),
        flagged: agg.flagged,
        fully_covered: agg.fully_covered,
        cm: agg.cm,
        energy: any_energy.then_some(energy_sum),
        boards,
        per_model,
        events: {
            let mut events = ctl.events;
            events.extend(net_events);
            events
        },
        gateways,
        verdicts,
        telemetry: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::{deploy_multi_ids, DetectorBundle};
    use canids_dataflow::ip::CompileConfig;
    use canids_dataset::attacks::{AttackKind, AttackProfile, BurstSchedule};
    use canids_qnn::mlp::{MlpConfig, QuantMlp};

    fn untrained_model(seed: u64) -> IntegerMlp {
        QuantMlp::new(MlpConfig {
            seed,
            ..MlpConfig::paper_4bit()
        })
        .unwrap()
        .export()
        .unwrap()
    }

    fn quick_capture(attack: bool, seed: u64) -> Dataset {
        DatasetBuilder::new(TrafficConfig {
            duration: SimTime::from_millis(200),
            attack: attack.then(|| AttackProfile::dos().with_schedule(BurstSchedule::Continuous)),
            seed,
            ..TrafficConfig::default()
        })
        .build()
    }

    #[test]
    fn replay_config_wire_bitrate_and_overrides() {
        let config = ReplayConfig::default()
            .with_bitrate(Bitrate::new(750_000))
            .with_policy(SchedPolicy::Sequential);
        assert_eq!(config.wire_bitrate().bits_per_sec(), 750_000);
        assert_eq!(
            ReplayConfig {
                pacing: Pacing::FdClass,
                ..ReplayConfig::default()
            }
            .wire_bitrate()
            .bits_per_sec(),
            5_000_000
        );
        let with_override = ReplayConfig {
            ecu_overrides: vec![(1, SchedPolicy::DmaBatch { batch: 8 })],
            ..config
        };
        assert_eq!(with_override.ecu_for(0).policy, SchedPolicy::Sequential);
        assert_eq!(
            with_override.ecu_for(1).policy,
            SchedPolicy::DmaBatch { batch: 8 }
        );
    }

    #[test]
    fn topology_slot_model_covers_homes_and_standbys() {
        let mut topo = ServeTopology::single_shard(&["a".into(), "b".into()], 64);
        topo.standbys[1] = Some(Slot { shard: 0, local: 2 });
        assert_eq!(topo.slot_model(Slot { shard: 0, local: 0 }), Some(0));
        assert_eq!(topo.slot_model(Slot { shard: 0, local: 1 }), Some(1));
        assert_eq!(topo.slot_model(Slot { shard: 0, local: 2 }), Some(1));
        assert_eq!(topo.slot_model(Slot { shard: 0, local: 3 }), None);
    }

    #[test]
    fn value_score_window_expires_old_hits() {
        let mut score = ValueScore::new(10, 2);
        score.record(0, 0);
        score.record(0, 4);
        score.record(1, 5);
        score.expire(9);
        assert_eq!(score.score(0), 2, "both hits inside the window");
        score.expire(10);
        assert_eq!(score.score(0), 1, "ordinal 0 expired at 0 + 10 <= 10");
        score.expire(100);
        assert_eq!(score.score(0), 0);
        assert_eq!(score.score(1), 0);
        // Degenerate window clamps to 1.
        let clamped = ValueScore::new(0, 1);
        assert_eq!(clamped.window, 1);
    }

    #[test]
    fn software_backend_matches_streaming_evaluator() {
        let model = untrained_model(3);
        let capture = quick_capture(true, 3);
        let mut reference = StreamingEvaluator::new(model.clone());
        for rec in capture.iter() {
            reference.push(rec);
        }
        let mut verdicts: Vec<Verdict> = Vec::new();
        let mut harness = ServeHarness::new(SoftwareBackend::single(model));
        let report = harness
            .replay_with(&capture, &ReplayConfig::default(), &mut verdicts)
            .unwrap();
        assert_eq!(report.backend, "software");
        assert_eq!(report.offered, capture.len());
        assert_eq!(report.serviced + report.dropped as usize, report.offered);
        // No drops at this pace in practice; when none, the fused CM is
        // the evaluator's CM and every verdict matches the record.
        if report.dropped == 0 {
            assert_eq!(report.cm, *reference.confusion());
            assert_eq!(verdicts.len(), capture.len());
            for (v, rec) in verdicts.iter().zip(capture.iter()) {
                assert_eq!(v.truth_attack, rec.label.is_attack());
                assert_eq!(v.flagged, v.model_flags != 0);
                assert_eq!(v.consulted, 1);
                assert_eq!(v.boards, 1);
            }
        }
        // Ordinals arrive strictly increasing either way.
        assert!(verdicts.windows(2).all(|w| w[0].ordinal < w[1].ordinal));
        assert!(report.sustained_fps.is_some());
        assert!(report.energy.is_none(), "no rail model in software");
        assert_eq!(report.per_model.len(), 1);
        assert_eq!(
            report.per_model[0].flagged,
            verdicts.iter().filter(|v| v.flagged).count()
        );
    }

    #[test]
    fn batched_software_dispatch_never_changes_classification() {
        // Batching is a dispatch optimisation: with a FIFO deep enough
        // that nothing can drop, every window size classifies every
        // frame identically to the frame-at-a-time path (same per-model
        // prediction sequence, so same CM and flag counts), and the
        // verdict stream still covers each ordinal exactly once.
        let models: Vec<IntegerMlp> = (0..2).map(|i| untrained_model(60 + i)).collect();
        let capture = quick_capture(true, 11);
        let deep = EcuConfig {
            queue_depth: capture.len() + 1,
            ..EcuConfig::default()
        };
        let mut baseline: Option<(ConfusionMatrix, usize)> = None;
        for batch in [1usize, 8, 32, 1000] {
            let mut verdicts: Vec<Verdict> = Vec::new();
            let config = ReplayConfig {
                ecu: deep,
                ..ReplayConfig::default().with_batch(batch)
            };
            let mut harness = ServeHarness::new(SoftwareBackend::new(models.clone()));
            let report = harness
                .replay_with(&capture, &config, &mut verdicts)
                .unwrap();
            assert_eq!(report.offered, capture.len(), "batch {batch}");
            assert_eq!(report.dropped, 0, "deep FIFO admits everything");
            assert_eq!(report.serviced, capture.len(), "batch {batch}");
            assert_eq!(verdicts.len(), capture.len(), "batch {batch}");
            let mut ords: Vec<usize> = verdicts.iter().map(|v| v.ordinal).collect();
            ords.sort_unstable();
            assert!(
                ords.iter().enumerate().all(|(i, &o)| i == o),
                "batch {batch}"
            );
            match &baseline {
                None => baseline = Some((report.cm, report.flagged)),
                Some((cm, flagged)) => {
                    assert_eq!(&report.cm, cm, "batch {batch}");
                    assert_eq!(report.flagged, *flagged, "batch {batch}");
                }
            }
        }
    }

    #[test]
    fn multi_model_software_backend_reports_per_model_sections() {
        let models: Vec<IntegerMlp> = (0..3).map(|i| untrained_model(40 + i)).collect();
        let capture = quick_capture(true, 8);
        let mut singles: Vec<StreamingEvaluator> = models
            .iter()
            .map(|m| StreamingEvaluator::new(m.clone()))
            .collect();
        for rec in capture.iter() {
            for s in &mut singles {
                s.push(rec);
            }
        }
        let mut harness = ServeHarness::new(SoftwareBackend::new(models));
        let report = harness.replay(&capture, &ReplayConfig::default()).unwrap();
        if report.dropped == 0 {
            for (m, single) in report.per_model.iter().zip(&singles) {
                assert_eq!(m.cm, *single.confusion(), "model {}", m.model);
                assert_eq!(m.consulted, capture.len());
            }
        }
    }

    /// Every deterministic field of a report, with float fields rendered
    /// via their exact bit patterns. `include_timing` adds the
    /// latency/sustained figures — exact on simulated backends, host
    /// noise on the software backend.
    fn fingerprint(r: &ServeReport, include_timing: bool) -> String {
        use std::fmt::Write as _;
        let mut s = format!(
            "{} {} {} {} {} {:?} fps:{:x} {:?} {:?} {} {}",
            r.offered,
            r.serviced,
            r.dropped,
            r.flagged,
            r.fully_covered,
            r.cm,
            r.offered_fps.to_bits(),
            r.first_arrival,
            r.last_arrival,
            r.events.len(),
            r.boards.len(),
        );
        if include_timing {
            let _ = write!(
                s,
                " lat:{:?} sustained:{:?}",
                r.latency,
                r.sustained_fps.map(f64::to_bits)
            );
        }
        for (t, f) in &r.verdicts {
            let _ = write!(s, "|{t:?}{f}");
        }
        for m in &r.per_model {
            let _ = write!(
                s,
                "|m{} {} {} {} {:?}",
                m.model, m.consulted, m.flagged, m.confirmed_positives, m.cm
            );
        }
        s
    }

    #[test]
    fn sharded_report_is_independent_of_worker_count() {
        // The worker pool is an execution knob: on the fully
        // deterministic simulated backend, every worker count must
        // produce a bit-identical merged report — including latency
        // percentiles and the exact f64 bits of the rate figures.
        let bundles = vec![
            DetectorBundle::new(AttackKind::Dos, untrained_model(1)),
            DetectorBundle::new(AttackKind::Fuzzy, untrained_model(2)),
        ];
        let capture = quick_capture(true, 13);
        let mut prints = Vec::new();
        for workers in [
            ShardWorkers::Fixed(1),
            ShardWorkers::Fixed(2),
            ShardWorkers::Auto,
        ] {
            let config = ReplayConfig::default()
                .with_shards(4)
                .with_workers(workers)
                .with_bitrate(Bitrate::HIGH_SPEED_1M);
            let report = ServeHarness::replay_sharded(
                || {
                    Ok(EcuBackend::owning(deploy_multi_ids(
                        &bundles,
                        CompileConfig::default(),
                    )?))
                },
                &capture,
                &config,
            )
            .unwrap();
            assert_eq!(report.offered, capture.len());
            assert_eq!(report.serviced + report.dropped as usize, report.offered);
            prints.push(fingerprint(&report, true));
        }
        assert_eq!(prints[0], prints[1], "1 vs 2 workers");
        assert_eq!(prints[0], prints[2], "1 vs auto workers");
    }

    #[test]
    fn sharded_software_classification_is_independent_of_worker_count() {
        // Software shard timing is measured wall clock, so only the
        // deterministic subset (counts, CMs, rates, the verdict stream)
        // is pinned across pool sizes.
        let model = untrained_model(7);
        let capture = quick_capture(true, 14);
        let mut prints = Vec::new();
        for workers in [ShardWorkers::Fixed(1), ShardWorkers::Fixed(2)] {
            let config = ReplayConfig {
                ecu: EcuConfig {
                    queue_depth: capture.len() + 1,
                    ..EcuConfig::default()
                },
                ..ReplayConfig::default().with_shards(3).with_workers(workers)
            };
            let report = ServeHarness::replay_sharded(
                || Ok(SoftwareBackend::single(model.clone())),
                &capture,
                &config,
            )
            .unwrap();
            assert_eq!(report.dropped, 0, "deep FIFO admits everything");
            assert!(report.sustained_fps.is_some(), "software reports capacity");
            prints.push(fingerprint(&report, false));
        }
        assert_eq!(prints[0], prints[1]);
    }

    #[test]
    fn sharded_single_shard_is_plain_replay() {
        // `shards == 1` must be *the same code path* as `replay`, so the
        // two reports agree bit for bit on the simulated backend.
        let bundles = vec![DetectorBundle::new(AttackKind::Dos, untrained_model(3))];
        let deployment = deploy_multi_ids(&bundles, CompileConfig::default()).unwrap();
        let capture = quick_capture(true, 15);
        let config = ReplayConfig::default().with_bitrate(Bitrate::HIGH_SPEED_1M);
        let plain = ServeHarness::new(EcuBackend::new(&deployment))
            .replay(&capture, &config)
            .unwrap();
        let sharded = ServeHarness::replay_sharded(
            || {
                Ok(EcuBackend::owning(deploy_multi_ids(
                    &bundles,
                    CompileConfig::default(),
                )?))
            },
            &capture,
            &config.clone().with_workers(ShardWorkers::Fixed(1)),
        )
        .unwrap();
        assert_eq!(fingerprint(&plain, true), fingerprint(&sharded, true));
    }

    #[test]
    fn telemetry_never_perturbs_the_report() {
        // Observability must be free: the same replay with and without a
        // probe attached produces a bit-identical report. On the fully
        // simulated ECU path that covers timing too; on the software
        // path the wall-derived figures are excluded by contract.
        let bundles = vec![
            DetectorBundle::new(AttackKind::Dos, untrained_model(1)),
            DetectorBundle::new(AttackKind::Fuzzy, untrained_model(2)),
        ];
        let deployment = deploy_multi_ids(&bundles, CompileConfig::default()).unwrap();
        let capture = quick_capture(true, 21);
        let config = ReplayConfig::default().with_policy(SchedPolicy::DmaBatch { batch: 16 });
        let traced = config.clone().with_telemetry(TelemetryConfig::default());
        let off = ServeHarness::new(deployment.serve_backend())
            .replay(&capture, &config)
            .unwrap();
        let on = ServeHarness::new(deployment.serve_backend())
            .replay(&capture, &traced)
            .unwrap();
        assert!(off.telemetry.is_none() && on.telemetry.is_some());
        assert_eq!(fingerprint(&off, true), fingerprint(&on, true), "ecu");

        let model = untrained_model(3);
        let sw_config = ReplayConfig::default();
        let sw_traced = sw_config.clone().with_telemetry(TelemetryConfig::default());
        let sw_off = ServeHarness::new(SoftwareBackend::single(model.clone()))
            .replay(&capture, &sw_config)
            .unwrap();
        let sw_on = ServeHarness::new(SoftwareBackend::single(model))
            .replay(&capture, &sw_traced)
            .unwrap();
        assert_eq!(
            fingerprint(&sw_off, false),
            fingerprint(&sw_on, false),
            "software"
        );
    }

    #[test]
    fn telemetry_spans_cover_the_serving_stages() {
        // ECU path: per-frame infer spans plus one dma_window span per
        // drained batch, all on the virtual clock, with frame counters
        // tied to the report totals.
        let bundles = vec![DetectorBundle::new(AttackKind::Dos, untrained_model(4))];
        let deployment = deploy_multi_ids(&bundles, CompileConfig::default()).unwrap();
        let capture = quick_capture(true, 22);
        let traced = ReplayConfig::default().with_telemetry(TelemetryConfig::default());
        let report = ServeHarness::new(deployment.serve_backend())
            .replay(&capture, &traced)
            .unwrap();
        let t = report.telemetry.as_ref().unwrap();
        let infer = t.stage_stats(Stage::Infer);
        assert_eq!(
            infer.count as usize, report.serviced,
            "one infer span per serviced frame on the per-message policy"
        );
        assert_eq!(
            t.metrics.counter(Counter::FramesOffered) as usize,
            report.offered
        );
        assert_eq!(
            t.metrics.counter(Counter::FramesServiced) as usize,
            report.serviced
        );
        assert_eq!(t.metrics.counter(Counter::FramesDropped), report.dropped);
        assert!(t.spans.iter().all(|s| s.end >= s.start));

        // Batched DMA policy: the window transfer is the profiled unit.
        let batched = ServeHarness::new(deployment.serve_backend())
            .replay(
                &capture,
                &traced
                    .clone()
                    .with_policy(SchedPolicy::DmaBatch { batch: 32 }),
            )
            .unwrap();
        let tb = batched.telemetry.as_ref().unwrap();
        let dma = tb.stage_stats(Stage::DmaWindow);
        assert!(dma.count > 0, "batched replay drains DMA windows");
        assert!(dma.count as usize <= batched.serviced);

        // Software path: the fused featurise -> pack -> infer split is
        // present for every serviced frame.
        let model = untrained_model(5);
        let sw = ServeHarness::new(SoftwareBackend::single(model))
            .replay(
                &capture,
                &ReplayConfig::default().with_telemetry(TelemetryConfig::default()),
            )
            .unwrap();
        let ts = sw.telemetry.as_ref().unwrap();
        for stage in [Stage::Featurise, Stage::Pack, Stage::Infer] {
            assert_eq!(
                ts.stage_stats(stage).count as usize,
                sw.serviced,
                "{stage:?}"
            );
        }
    }

    #[test]
    fn sharded_telemetry_is_independent_of_worker_count() {
        // The metrics registry and span stream merge in strict shard
        // order, so the sharded telemetry fingerprint is bit-identical
        // for any worker-pool size on the simulated backend.
        let bundles = vec![
            DetectorBundle::new(AttackKind::Dos, untrained_model(1)),
            DetectorBundle::new(AttackKind::Fuzzy, untrained_model(2)),
        ];
        let capture = quick_capture(true, 23);
        let mut prints = Vec::new();
        for workers in [
            ShardWorkers::Fixed(1),
            ShardWorkers::Fixed(2),
            ShardWorkers::Auto,
        ] {
            let config = ReplayConfig::default()
                .with_shards(4)
                .with_workers(workers)
                .with_policy(SchedPolicy::DmaBatch { batch: 16 })
                .with_telemetry(TelemetryConfig::default());
            let report = ServeHarness::replay_sharded(
                || {
                    Ok(EcuBackend::owning(deploy_multi_ids(
                        &bundles,
                        CompileConfig::default(),
                    )?))
                },
                &capture,
                &config,
            )
            .unwrap();
            let t = report.telemetry.as_ref().unwrap();
            assert!(t.spans.iter().any(|s| s.shard > 0), "spans re-tag shards");
            prints.push(t.fingerprint());
        }
        assert_eq!(prints[0], prints[1], "1 vs 2 workers");
        assert_eq!(prints[0], prints[2], "1 vs auto workers");
    }

    fn report_with_events(times_us: &[u64]) -> ServeReport {
        ServeReport {
            scenario: "t".into(),
            backend: "t".into(),
            sched: "t".into(),
            admission: "t".into(),
            bitrate_bps: 1_000_000,
            offered: 0,
            serviced: 0,
            dropped: 0,
            first_arrival: SimTime::ZERO,
            last_arrival: SimTime::ZERO,
            offered_fps: 0.0,
            sustained_fps: None,
            latency: LatencyStats::default(),
            flagged: 0,
            fully_covered: 0,
            cm: ConfusionMatrix::new(),
            energy: None,
            boards: Vec::new(),
            per_model: Vec::new(),
            events: times_us
                .iter()
                .map(|&us| FleetEvent {
                    time: SimTime::from_micros(us),
                    board: 0,
                    model: 0,
                    action: FleetAction::Shed,
                })
                .collect(),
            gateways: Vec::new(),
            verdicts: Vec::new(),
            telemetry: None,
        }
    }

    #[test]
    fn merged_admission_events_are_time_sorted_with_stable_ties() {
        // Per-shard event streams are each chronological but interleave
        // when merged; the merge must emit one chronological stream with
        // ties resolved in shard order, independent of worker timing.
        let shard0 = report_with_events(&[5, 10]);
        let mut shard1 = report_with_events(&[3, 10]);
        shard1.events[0].board = 1;
        shard1.events[1].board = 1;
        let merged = merge_sharded(vec![(shard0, Vec::new()), (shard1, Vec::new())]);
        let order: Vec<(SimTime, usize)> =
            merged.events.iter().map(|e| (e.time, e.board)).collect();
        let expected: Vec<(SimTime, usize)> = [(3u64, 1usize), (5, 0), (10, 0), (10, 1)]
            .iter()
            .map(|&(us, b)| (SimTime::from_micros(us), b))
            .collect();
        assert_eq!(order, expected, "chronological, shard order on ties");
    }

    #[test]
    fn sharded_merge_covers_every_frame_once() {
        // Shard boundaries partition the capture: offered/serviced
        // totals and the per-shard board sections must account for every
        // record exactly once, whatever the shard count.
        let model = untrained_model(9);
        let capture = quick_capture(true, 16);
        for shards in [2usize, 3, 5, 8] {
            let config = ReplayConfig {
                ecu: EcuConfig {
                    queue_depth: capture.len() + 1,
                    ..EcuConfig::default()
                },
                ..ReplayConfig::default().with_shards(shards)
            };
            let report = ServeHarness::replay_sharded(
                || Ok(SoftwareBackend::single(model.clone())),
                &capture,
                &config,
            )
            .unwrap();
            assert_eq!(report.offered, capture.len(), "shards {shards}");
            assert_eq!(report.dropped, 0, "shards {shards}");
            assert_eq!(report.serviced, capture.len(), "shards {shards}");
            assert_eq!(report.cm.total() as usize, capture.len(), "shards {shards}");
            assert_eq!(report.boards.len(), shards);
            assert_eq!(
                report.boards.iter().map(|b| b.serviced).sum::<usize>(),
                capture.len()
            );
            assert!(report.boards[0].board.starts_with("shard0/"));
        }
    }

    #[test]
    fn ecu_backend_overload_drops_and_skips_verdicts() {
        // Simulated SoC path: saturated pacing over a deep-sequential
        // 2-model ECU with a tiny FIFO must drop deterministically, and
        // dropped frames must produce no verdict.
        let bundles = vec![
            DetectorBundle::new(AttackKind::Dos, untrained_model(1)),
            DetectorBundle::new(AttackKind::Fuzzy, untrained_model(2)),
        ];
        let deployment = deploy_multi_ids(&bundles, CompileConfig::default()).unwrap();
        let capture = quick_capture(true, 9);
        let mut verdicts: Vec<Verdict> = Vec::new();
        let mut harness = ServeHarness::new(deployment.serve_backend());
        let config = ReplayConfig {
            ecu: EcuConfig {
                queue_depth: 4,
                policy: SchedPolicy::Sequential,
                ..EcuConfig::default()
            },
            ..ReplayConfig::default()
        };
        let report = harness
            .replay_with(&capture, &config, &mut verdicts)
            .unwrap();
        assert_eq!(report.backend, "ecu");
        assert!(report.dropped > 0, "saturated 2-model sequential must drop");
        assert_eq!(report.serviced, verdicts.len());
        assert_eq!(report.serviced + report.dropped as usize, report.offered);
        assert_eq!(report.verdicts.len(), report.serviced);
        // Deterministic rerun: the simulated path is bit-stable.
        let mut harness2 = ServeHarness::new(deployment.serve_backend());
        let report2 = harness2.replay(&capture, &config).unwrap();
        assert_eq!(report.dropped, report2.dropped);
        assert_eq!(report.latency, report2.latency);
        assert_eq!(report.verdicts, report2.verdicts);
    }

    #[test]
    fn priorities_must_cover_every_model() {
        let bundles = vec![
            DetectorBundle::new(AttackKind::Dos, untrained_model(1)),
            DetectorBundle::new(AttackKind::Fuzzy, untrained_model(2)),
        ];
        let deployment = deploy_multi_ids(&bundles, CompileConfig::default()).unwrap();
        let capture = quick_capture(false, 5);
        let mut harness = ServeHarness::new(deployment.serve_backend());
        let err = harness
            .replay(
                &capture,
                &ReplayConfig::default().with_admission(AdmissionPolicy::ShedLowestValue {
                    priorities: vec![1],
                }),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            CoreError::PriorityMismatch {
                expected: 2,
                actual: 1
            }
        ));
    }

    #[test]
    fn sweep_returns_reports_in_scenario_order() {
        let model = untrained_model(7);
        let scenarios = vec![
            ServeScenario {
                name: "normal-1m".into(),
                source: CaptureSource::Generate(TrafficConfig {
                    duration: SimTime::from_millis(120),
                    seed: 0x11E,
                    ..TrafficConfig::default()
                }),
                config: ReplayConfig::default(),
            },
            ServeScenario {
                name: "dos-fd".into(),
                source: CaptureSource::Generate(TrafficConfig {
                    duration: SimTime::from_millis(120),
                    attack: Some(AttackProfile::dos().with_schedule(BurstSchedule::Continuous)),
                    seed: 0x5FD,
                    ..TrafficConfig::default()
                }),
                config: ReplayConfig {
                    pacing: Pacing::FdClass,
                    ..ReplayConfig::default()
                },
            },
        ];
        let reports =
            ServeHarness::sweep(|| Ok(SoftwareBackend::single(model.clone())), &scenarios).unwrap();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].scenario, "normal-1m");
        assert_eq!(reports[1].scenario, "dos-fd");
        assert_eq!(reports[0].bitrate_bps, 1_000_000);
        assert_eq!(reports[1].bitrate_bps, 5_000_000);
        for r in &reports {
            assert!(r.offered > 0);
            assert_eq!(r.serviced + r.dropped as usize, r.offered);
        }
    }

    #[test]
    fn verdict_helpers_and_sink_impls() {
        let v = Verdict {
            ordinal: 3,
            arrival: SimTime::from_micros(10),
            completed_at: SimTime::from_micros(30),
            flagged: true,
            truth_attack: false,
            model_flags: 0b100,
            consulted: 0b111,
            boards: 2,
        };
        assert!(!v.correct());
        assert!(v.model_flagged(2) && !v.model_flagged(0));
        assert!(v.model_consulted(1) && !v.model_consulted(3));
        let mut collected: Vec<Verdict> = Vec::new();
        collected.verdict(&v);
        assert_eq!(collected.len(), 1);
        let mut count = 0usize;
        {
            let mut closure = |_: &Verdict| count += 1;
            closure.verdict(&v);
        }
        assert_eq!(count, 1);
    }
}
