//! Event-driven fleet network core.
//!
//! The analytic gateway path ([`canids_can::gateway::SegmentForwarder`])
//! models one store-and-forward hop with closed-form math; it cannot
//! express backbone congestion, finite switch buffers, multi-segment
//! topologies, or faults. This module rebuilds the cross-ECU substrate
//! as a deterministic discrete-event simulation:
//!
//! * an [`Event`] trait with [`EventTime::Absolute`] / [`EventTime::Delta`]
//!   times and a [`Scheduler`] over a `BinaryHeap` with deterministic
//!   tie-breaking — (time, then sequence number) — so identical inputs
//!   replay identically, which the bit-for-bit cross-checks against the
//!   analytic path require;
//! * a [`Topology`] of nodes: CAN buses as links ([`SegmentId`]),
//!   gateways as switch nodes ([`GatewayId`]) with pluggable queue
//!   disciplines ([`QueueDiscipline::DropTail`] shared buffers and
//!   [`QueueDiscipline::Pfc`]-style per-port backpressure), and boards
//!   as sink nodes ([`SinkId`]) hosting `EcuStream`s;
//! * first-class fault events ([`Fault`]): a babbling-idiot node, a
//!   segment bus-off window, and a timed gateway outage, with every
//!   lost frame accounted under a typed [`DropReason`] (no silent loss).
//!
//! [`FleetNet`] packages the common single-backbone fleet topology and
//! is driven by `serve::FleetBackend` when
//! `ReplayConfig::transport` selects the event-driven path. On
//! uncongested topologies its per-gateway egress math is *exactly* the
//! `SegmentForwarder` recurrence (`release = arrival + delay`,
//! `start = max(release, busy_until)`,
//! `delivered = start + frame_duration`,
//! `busy_until = start + frame_slot_duration`), so the two transports
//! produce bit-identical `ServeReport`s (`tests/net_equivalence.rs`).
//!
//! # Lazy co-simulation
//!
//! The serve harness pushes capture frames one at a time in timestamp
//! order. [`FleetNet::deliver`] advances the simulation to the frame's
//! arrival, injects it, then runs events forward until that frame
//! resolves (delivered or dropped). This is sound for the FIFO
//! disciplines here because later arrivals can never change an earlier
//! frame's outcome. One documented consequence: fault traffic generated
//! while running ahead can execute slightly "late" relative to the next
//! capture frame's timestamp; all computed frame times use carried
//! timestamps (never the scheduler clock), so delivery times are
//! unaffected — only the interleaving of attacker frames between two
//! capture pushes can shift, and only in faulted scenarios.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use canids_can::frame::{CanFrame, CanId};
use canids_can::time::SimTime;
use canids_can::timing::{frame_duration, frame_slot_duration, Bitrate};

// ---------------------------------------------------------------------
// Node and frame identifiers
// ---------------------------------------------------------------------

/// A CAN bus segment (a link) in a [`Topology`].
///
/// # Example
///
/// ```
/// use canids_core::net::Topology;
/// use canids_can::timing::Bitrate;
///
/// let mut b = Topology::builder();
/// let backbone = b.segment(Bitrate::HIGH_SPEED_1M);
/// assert_eq!(backbone.0, 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SegmentId(pub usize);

/// A gateway (switch node) in a [`Topology`].
///
/// # Example
///
/// ```
/// use canids_core::net::{QueueDiscipline, Topology};
/// use canids_can::time::SimTime;
/// use canids_can::timing::Bitrate;
///
/// let mut b = Topology::builder();
/// let bus = b.segment(Bitrate::HIGH_SPEED_1M);
/// let gw = b.gateway(bus, SimTime::from_micros(20), QueueDiscipline::default());
/// assert_eq!(gw.0, 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GatewayId(pub usize);

/// A board sink node (frame destination) in a [`Topology`].
///
/// # Example
///
/// ```
/// use canids_core::net::Topology;
/// use canids_can::timing::Bitrate;
///
/// let mut b = Topology::builder();
/// let bus = b.segment(Bitrate::HIGH_SPEED_1M);
/// let board = b.sink(bus);
/// assert_eq!(board.0, 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SinkId(pub usize);

/// Handle to one injected frame; resolves to a [`NetOutcome`].
///
/// # Example
///
/// ```
/// use canids_core::net::{NetOutcome, NetSim, Topology};
/// use canids_can::frame::{CanFrame, CanId};
/// use canids_can::time::SimTime;
/// use canids_can::timing::Bitrate;
///
/// let mut b = Topology::builder();
/// let bus = b.segment(Bitrate::HIGH_SPEED_1M);
/// let board = b.sink(bus);
/// let mut sim = NetSim::new(b.build());
/// let f = CanFrame::new(CanId::standard(0x42)?, &[0; 8])?;
/// let token = sim.inject(SimTime::from_micros(5), bus, board, f);
/// sim.run();
/// assert!(matches!(sim.outcome(token), Some(NetOutcome::Delivered(_))));
/// # Ok::<(), canids_can::error::FrameError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FrameToken(pub usize);

// ---------------------------------------------------------------------
// Event core
// ---------------------------------------------------------------------

/// When an event fires: at an absolute simulation time, or a delta from
/// the moment it is scheduled.
///
/// # Example
///
/// ```
/// use canids_core::net::EventTime;
/// use canids_can::time::SimTime;
///
/// let now = SimTime::from_micros(10);
/// assert_eq!(EventTime::Delta(SimTime::from_micros(5)).abs_time(now), SimTime::from_micros(15));
/// // Absolute times already in the past clamp to `now`: the scheduler
/// // never runs backwards.
/// assert_eq!(EventTime::Absolute(SimTime::from_micros(3)).abs_time(now), now);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventTime {
    /// Fire at this simulation time (clamped to "no earlier than now").
    Absolute(SimTime),
    /// Fire this long after the event is scheduled.
    Delta(SimTime),
}

impl EventTime {
    /// Resolves to an absolute firing time, given the scheduler clock.
    pub fn abs_time(self, now: SimTime) -> SimTime {
        match self {
            EventTime::Absolute(t) => t.max(now),
            EventTime::Delta(d) => now + d,
        }
    }
}

/// A schedulable simulation event over state `S`.
///
/// `exec` consumes the event and may spawn follow-up events (their
/// [`EventTime::Delta`] times resolve against the firing time).
///
/// # Example
///
/// ```
/// use canids_core::net::{Event, EventTime, Scheduler};
/// use canids_can::time::SimTime;
///
/// struct Tick(u32);
/// impl Event<Vec<u32>> for Tick {
///     fn time(&self) -> EventTime {
///         EventTime::Absolute(SimTime::from_micros(self.0 as u64))
///     }
///     fn exec(self: Box<Self>, _now: SimTime, log: &mut Vec<u32>) -> Vec<Box<dyn Event<Vec<u32>>>> {
///         log.push(self.0);
///         Vec::new()
///     }
/// }
///
/// let mut sched = Scheduler::new();
/// sched.schedule(Box::new(Tick(7)));
/// sched.schedule(Box::new(Tick(3)));
/// let mut log = Vec::new();
/// sched.run(&mut log);
/// assert_eq!(log, vec![3, 7]);
/// ```
pub trait Event<S> {
    /// When the event wants to fire.
    fn time(&self) -> EventTime;
    /// Fires the event at `now`, returning any follow-up events.
    fn exec(self: Box<Self>, now: SimTime, state: &mut S) -> Vec<Box<dyn Event<S>>>;
}

struct EventContainer<S> {
    time: SimTime,
    seq: u64,
    event: Box<dyn Event<S>>,
}

impl<S> PartialEq for EventContainer<S> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<S> Eq for EventContainer<S> {}
impl<S> PartialOrd for EventContainer<S> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<S> Ord for EventContainer<S> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we need the earliest
        // (time, seq) first. The sequence number makes ties FIFO.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Deterministic discrete-event scheduler: a `BinaryHeap` ordered by
/// (time, then monotone sequence number), so same-time events execute
/// in the order they were scheduled — stable FIFO ties.
///
/// # Example
///
/// ```
/// use canids_core::net::{Event, EventTime, Scheduler};
/// use canids_can::time::SimTime;
///
/// struct At(u64, u32);
/// impl Event<Vec<u32>> for At {
///     fn time(&self) -> EventTime {
///         EventTime::Absolute(SimTime::from_nanos(self.0))
///     }
///     fn exec(self: Box<Self>, _now: SimTime, log: &mut Vec<u32>) -> Vec<Box<dyn Event<Vec<u32>>>> {
///         log.push(self.1);
///         Vec::new()
///     }
/// }
///
/// let mut sched = Scheduler::new();
/// sched.schedule(Box::new(At(100, 1))); // same time, scheduled first
/// sched.schedule(Box::new(At(100, 2))); // same time, scheduled second
/// sched.schedule(Box::new(At(50, 0)));
/// let mut log = Vec::new();
/// sched.run(&mut log);
/// assert_eq!(log, vec![0, 1, 2]);
/// assert_eq!(sched.executed(), 3);
/// ```
pub struct Scheduler<S> {
    heap: BinaryHeap<EventContainer<S>>,
    now: SimTime,
    seq: u64,
    executed: u64,
}

impl<S> Default for Scheduler<S> {
    fn default() -> Self {
        Scheduler::new()
    }
}

impl<S> Scheduler<S> {
    /// An empty scheduler at time zero.
    pub fn new() -> Self {
        Scheduler {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            executed: 0,
        }
    }

    /// Current simulation time (the firing time of the last event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events waiting in the heap.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events executed so far (the bench's µs/event denominator).
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Enqueues an event; its firing time resolves against `now`.
    pub fn schedule(&mut self, event: Box<dyn Event<S>>) {
        let time = event.time().abs_time(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(EventContainer { time, seq, event });
    }

    /// Firing time of the earliest pending event.
    pub fn next_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|c| c.time)
    }

    /// Pops and executes the earliest event; returns its firing time.
    pub fn step(&mut self, state: &mut S) -> Option<SimTime> {
        let c = self.heap.pop()?;
        self.now = c.time;
        self.executed += 1;
        for follow in c.event.exec(c.time, state) {
            self.schedule(follow);
        }
        Some(c.time)
    }

    /// Executes every event with firing time `<= until`.
    pub fn run_until(&mut self, state: &mut S, until: SimTime) {
        while self.next_time().is_some_and(|t| t <= until) {
            self.step(state);
        }
    }

    /// Executes events until the heap is empty.
    pub fn run(&mut self, state: &mut S) {
        while self.step(state).is_some() {}
    }
}

// ---------------------------------------------------------------------
// Topology
// ---------------------------------------------------------------------

/// Gateway buffer policy.
///
/// # Example
///
/// ```
/// use canids_core::net::QueueDiscipline;
///
/// // The default is an unbounded drop-tail buffer: plain FIFO, which
/// // is exactly the analytic `SegmentForwarder` queueing model.
/// assert_eq!(QueueDiscipline::default(), QueueDiscipline::DropTail { capacity: usize::MAX });
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueDiscipline {
    /// One buffer pool shared by every egress port: when `capacity`
    /// frames are queued anywhere on the gateway, *any* new arrival is
    /// dropped — a flood on one port starves the others.
    DropTail {
        /// Total frames buffered across all ports.
        capacity: usize,
    },
    /// PFC-style per-port backpressure: each port owns a reserved
    /// quota; a port exceeding it pauses its upstream (arrivals are
    /// held, counted as `paused`, never dropped) while other ports'
    /// traffic keeps flowing.
    Pfc {
        /// Per-port reserved buffer quota before backpressure begins.
        quota: usize,
    },
}

impl Default for QueueDiscipline {
    fn default() -> Self {
        QueueDiscipline::DropTail {
            capacity: usize::MAX,
        }
    }
}

/// Why a frame was lost — every drop carries one (no silent loss).
///
/// # Example
///
/// ```
/// use canids_core::net::DropReason;
///
/// assert_eq!(DropReason::BufferFull.label(), "buffer-full");
/// assert_ne!(DropReason::BusOff, DropReason::GatewayOutage);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropReason {
    /// A drop-tail gateway's shared buffer was at capacity.
    BufferFull,
    /// The gateway was inside a timed outage (dark) window.
    GatewayOutage,
    /// The segment the frame needed was bus-off.
    BusOff,
    /// No gateway path exists from the source segment to the sink.
    Unroutable,
}

impl DropReason {
    /// Stable snake-case label for tables and logs.
    pub fn label(&self) -> &'static str {
        match self {
            DropReason::BufferFull => "buffer-full",
            DropReason::GatewayOutage => "gateway-outage",
            DropReason::BusOff => "bus-off",
            DropReason::Unroutable => "unroutable",
        }
    }
}

/// Terminal outcome of one injected frame.
///
/// # Example
///
/// ```
/// use canids_core::net::{DropReason, NetOutcome};
/// use canids_can::time::SimTime;
///
/// let d = NetOutcome::Delivered(SimTime::from_micros(120));
/// assert!(matches!(d, NetOutcome::Delivered(_)));
/// assert!(matches!(NetOutcome::Dropped(DropReason::BufferFull), NetOutcome::Dropped(_)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetOutcome {
    /// End-of-frame time on the destination sink's segment.
    Delivered(SimTime),
    /// Lost, with the typed reason.
    Dropped(DropReason),
}

/// One accounted frame loss.
///
/// # Example
///
/// ```
/// use canids_core::net::{DropReason, DropRecord};
/// use canids_can::time::SimTime;
///
/// let r = DropRecord {
///     time: SimTime::from_millis(3),
///     token: None, // attacker (fault) traffic carries no token
///     reason: DropReason::BufferFull,
///     gateway: Some(canids_core::net::GatewayId(0)),
///     segment: None,
/// };
/// assert_eq!(r.reason.label(), "buffer-full");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DropRecord {
    /// When the frame was lost.
    pub time: SimTime,
    /// The injected frame's token; `None` for fault-generated traffic.
    pub token: Option<FrameToken>,
    /// Typed loss reason.
    pub reason: DropReason,
    /// Gateway that dropped it, if the loss happened at a switch.
    pub gateway: Option<GatewayId>,
    /// Segment involved, for bus-off and routing losses.
    pub segment: Option<SegmentId>,
}

/// A first-class topology fault, scheduled as real simulation events.
///
/// # Example
///
/// ```
/// use canids_core::net::{Fault, GatewayId};
/// use canids_can::time::SimTime;
///
/// let outage = Fault::GatewayOutage {
///     gateway: GatewayId(0),
///     start: SimTime::from_millis(10),
///     end: SimTime::from_millis(12),
/// };
/// assert!(matches!(outage, Fault::GatewayOutage { .. }));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// A node streams highest-priority frames onto `segment` toward
    /// `dest` every `gap`, from `start` until `stop` — the classic
    /// babbling idiot saturating one switch port.
    BabblingIdiot {
        /// Segment the babbler transmits on.
        segment: SegmentId,
        /// Sink its frames are addressed to (selects the victim port).
        dest: SinkId,
        /// First frame arrival.
        start: SimTime,
        /// No frames at or after this time.
        stop: SimTime,
        /// Inter-frame arrival gap.
        gap: SimTime,
    },
    /// `segment` is bus-off in `[start, end)`: frames released onto it
    /// in the window are lost with [`DropReason::BusOff`].
    BusOff {
        /// Affected segment.
        segment: SegmentId,
        /// Window start (inclusive).
        start: SimTime,
        /// Window end (exclusive).
        end: SimTime,
    },
    /// `gateway` is dark in `[start, end)`: frames arriving at it in
    /// the window are lost with [`DropReason::GatewayOutage`].
    GatewayOutage {
        /// Affected gateway.
        gateway: GatewayId,
        /// Window start (inclusive).
        start: SimTime,
        /// Window end (exclusive).
        end: SimTime,
    },
}

/// Event-driven transport configuration carried on
/// `serve::ReplayConfig` (via `FleetTransport::EventDriven`).
///
/// # Example
///
/// ```
/// use canids_core::net::{NetConfig, QueueDiscipline};
///
/// let config = NetConfig::default();
/// assert_eq!(config.discipline, QueueDiscipline::default());
/// assert!(config.faults.is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NetConfig {
    /// Buffer policy for every gateway in the generated topology.
    pub discipline: QueueDiscipline,
    /// Faults to schedule at construction. For the single-backbone
    /// fleet topology the id layout is: segment 0 = backbone, segment
    /// `1 + b` = board `b`'s local segment, gateway `b` and sink `b`
    /// belong to board `b`.
    pub faults: Vec<Fault>,
}

/// Per-gateway queue/occupancy counters for the serve report's
/// networking section.
///
/// # Example
///
/// ```
/// use canids_core::net::GatewayLoad;
///
/// let load = GatewayLoad { gateway: 0, forwarded: 10, ..GatewayLoad::default() };
/// assert_eq!(load.dropped(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GatewayLoad {
    /// Gateway index (board index in the fleet topology).
    pub gateway: usize,
    /// Frames delivered out of this gateway's ports.
    pub forwarded: u64,
    /// Frames lost to a full shared drop-tail buffer.
    pub dropped_full: u64,
    /// Frames lost inside a gateway outage window.
    pub dropped_outage: u64,
    /// Frames lost to an egress segment bus-off window.
    pub dropped_bus_off: u64,
    /// PFC backpressure admissions past a port's quota.
    pub paused: u64,
    /// Peak frames buffered at once across all ports.
    pub peak_queue: usize,
    /// Sim-time at which `peak_queue` was first reached
    /// ([`SimTime::ZERO`] when nothing was ever buffered).
    pub peak_at: SimTime,
    /// Frames still buffered when the replay ended.
    pub queued: usize,
}

impl GatewayLoad {
    /// Total frames this gateway dropped, over all reasons.
    pub fn dropped(&self) -> u64 {
        self.dropped_full + self.dropped_outage + self.dropped_bus_off
    }
}

struct Segment {
    bitrate: Bitrate,
    busy_until: SimTime,
    down: bool,
    /// Sink hosted on this segment (at most one per segment here).
    sinks: Vec<usize>,
    /// Gateways whose ingress is this segment.
    gateways: Vec<usize>,
}

struct Port {
    egress: usize,
    queue: usize,
}

struct GatewayNode {
    ingress: usize,
    delay: SimTime,
    discipline: QueueDiscipline,
    dark: bool,
    ports: Vec<Port>,
    queued_total: usize,
    load: GatewayLoad,
}

/// Incrementally builds a [`Topology`]; `build` freezes it and
/// precomputes routes.
///
/// # Example
///
/// ```
/// use canids_core::net::{QueueDiscipline, Topology};
/// use canids_can::time::SimTime;
/// use canids_can::timing::Bitrate;
///
/// let mut b = Topology::builder();
/// let backbone = b.segment(Bitrate::HIGH_SPEED_1M);
/// let leaf = b.segment(Bitrate::HIGH_SPEED_500K);
/// let gw = b.gateway(backbone, SimTime::from_micros(20), QueueDiscipline::default());
/// b.port(gw, leaf);
/// let board = b.sink(leaf);
/// let topo = b.build();
/// assert_eq!(topo.segments(), 2);
/// assert_eq!(topo.sinks(), 1);
/// # let _ = board;
/// ```
#[derive(Default)]
pub struct TopologyBuilder {
    segments: Vec<Bitrate>,
    gateways: Vec<(usize, SimTime, QueueDiscipline)>,
    ports: Vec<Vec<usize>>,
    sinks: Vec<usize>,
}

impl TopologyBuilder {
    /// Adds a CAN bus segment (a link) running at `bitrate`.
    pub fn segment(&mut self, bitrate: Bitrate) -> SegmentId {
        self.segments.push(bitrate);
        SegmentId(self.segments.len() - 1)
    }

    /// Adds a gateway whose ingress side listens on `ingress`, with a
    /// per-frame store-and-forward `delay` and a buffer `discipline`.
    pub fn gateway(
        &mut self,
        ingress: SegmentId,
        delay: SimTime,
        discipline: QueueDiscipline,
    ) -> GatewayId {
        self.gateways.push((ingress.0, delay, discipline));
        self.ports.push(Vec::new());
        GatewayId(self.gateways.len() - 1)
    }

    /// Adds an egress port on `gateway` feeding `egress`; returns the
    /// port index on that gateway.
    pub fn port(&mut self, gateway: GatewayId, egress: SegmentId) -> usize {
        self.ports[gateway.0].push(egress.0);
        self.ports[gateway.0].len() - 1
    }

    /// Adds a board sink node attached to `segment`.
    pub fn sink(&mut self, segment: SegmentId) -> SinkId {
        self.sinks.push(segment.0);
        SinkId(self.sinks.len() - 1)
    }

    /// Freezes the topology and precomputes shortest-hop routes from
    /// every segment to every sink.
    pub fn build(self) -> Topology {
        let n_seg = self.segments.len();
        let mut segments: Vec<Segment> = self
            .segments
            .into_iter()
            .map(|bitrate| Segment {
                bitrate,
                busy_until: SimTime::ZERO,
                down: false,
                sinks: Vec::new(),
                gateways: Vec::new(),
            })
            .collect();
        let gateways: Vec<GatewayNode> = self
            .gateways
            .into_iter()
            .zip(self.ports)
            .enumerate()
            .map(|(g, ((ingress, delay, discipline), ports))| {
                segments[ingress].gateways.push(g);
                GatewayNode {
                    ingress,
                    delay,
                    discipline,
                    dark: false,
                    ports: ports
                        .into_iter()
                        .map(|egress| Port { egress, queue: 0 })
                        .collect(),
                    queued_total: 0,
                    load: GatewayLoad {
                        gateway: g,
                        ..GatewayLoad::default()
                    },
                }
            })
            .collect();
        for (s, &seg) in self.sinks.iter().enumerate() {
            segments[seg].sinks.push(s);
        }

        // BFS per sink, backwards from the sink's segment, recording for
        // every reachable segment which (gateway, port) is the next hop.
        let n_sinks = self.sinks.len();
        let mut next_hop = vec![vec![None; n_sinks]; n_seg];
        for (s, &home) in self.sinks.iter().enumerate() {
            let mut frontier = vec![home];
            let mut seen = vec![false; n_seg];
            seen[home] = true;
            while let Some(seg) = frontier.pop() {
                for (g, gw) in gateways.iter().enumerate() {
                    if let Some(p) = gw.ports.iter().position(|port| port.egress == seg) {
                        if !seen[gw.ingress] {
                            seen[gw.ingress] = true;
                            next_hop[gw.ingress][s] = Some((g, p));
                            frontier.push(gw.ingress);
                        }
                    }
                }
            }
        }

        Topology {
            segments,
            gateways,
            sink_delivered: vec![0; n_sinks],
            next_hop,
            outcomes: Vec::new(),
            drop_log: Vec::new(),
            flood_injected: 0,
        }
    }
}

/// The frozen node graph plus all mutable simulation state: segment
/// wires, gateway buffers, per-frame outcomes and the drop log.
///
/// # Example
///
/// ```
/// use canids_core::net::{QueueDiscipline, Topology};
/// use canids_can::time::SimTime;
/// use canids_can::timing::Bitrate;
///
/// let mut b = Topology::builder();
/// let bus = b.segment(Bitrate::HIGH_SPEED_1M);
/// let gw = b.gateway(bus, SimTime::from_micros(20), QueueDiscipline::default());
/// let leaf = b.segment(Bitrate::HIGH_SPEED_1M);
/// b.port(gw, leaf);
/// b.sink(leaf);
/// let topo = b.build();
/// assert_eq!((topo.segments(), topo.gateways(), topo.sinks()), (2, 1, 1));
/// assert!(topo.drop_log().is_empty());
/// ```
pub struct Topology {
    segments: Vec<Segment>,
    gateways: Vec<GatewayNode>,
    sink_delivered: Vec<u64>,
    /// `next_hop[segment][sink] = (gateway, port)` toward the sink.
    next_hop: Vec<Vec<Option<(usize, usize)>>>,
    outcomes: Vec<Option<NetOutcome>>,
    drop_log: Vec<DropRecord>,
    flood_injected: u64,
}

impl Topology {
    /// Starts building a topology.
    pub fn builder() -> TopologyBuilder {
        TopologyBuilder::default()
    }

    /// Number of segments.
    pub fn segments(&self) -> usize {
        self.segments.len()
    }

    /// Number of gateways.
    pub fn gateways(&self) -> usize {
        self.gateways.len()
    }

    /// Number of sinks.
    pub fn sinks(&self) -> usize {
        self.sinks_delivered().len()
    }

    /// Frames delivered to each sink, indexed by [`SinkId`].
    pub fn sinks_delivered(&self) -> &[u64] {
        &self.sink_delivered
    }

    /// Terminal outcome of an injected frame, if resolved yet.
    pub fn outcome(&self, token: FrameToken) -> Option<NetOutcome> {
        self.outcomes.get(token.0).copied().flatten()
    }

    /// Tokens injected so far.
    pub fn injected(&self) -> usize {
        self.outcomes.len()
    }

    /// Injected frames with no terminal outcome yet (still queued or in
    /// flight).
    pub fn in_flight(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_none()).count()
    }

    /// Every accounted loss, in drop order (capture and fault traffic).
    pub fn drop_log(&self) -> &[DropRecord] {
        &self.drop_log
    }

    /// Fault-generated (babbling-idiot) frames injected so far.
    pub fn flood_injected(&self) -> u64 {
        self.flood_injected
    }

    /// Per-gateway queue/occupancy counters, indexed by [`GatewayId`].
    pub fn gateway_loads(&self) -> Vec<GatewayLoad> {
        self.gateways
            .iter()
            .map(|g| GatewayLoad {
                queued: g.queued_total,
                ..g.load
            })
            .collect()
    }

    fn drop_frame(
        &mut self,
        time: SimTime,
        token: Option<usize>,
        reason: DropReason,
        gateway: Option<usize>,
        segment: Option<usize>,
    ) {
        if let Some(t) = token {
            self.outcomes[t] = Some(NetOutcome::Dropped(reason));
        }
        self.drop_log.push(DropRecord {
            time,
            token: token.map(FrameToken),
            reason,
            gateway: gateway.map(GatewayId),
            segment: segment.map(SegmentId),
        });
    }

    /// A frame is complete on `segment` at `at`. Either it has reached
    /// the destination sink's segment, or it hops into the next
    /// gateway toward `dest`.
    fn segment_arrival(
        &mut self,
        at: SimTime,
        segment: usize,
        dest: usize,
        frame: CanFrame,
        token: Option<usize>,
    ) -> Vec<Box<dyn Event<Topology>>> {
        if self.segments[segment].sinks.contains(&dest) {
            if let Some(t) = token {
                self.outcomes[t] = Some(NetOutcome::Delivered(at));
            }
            self.sink_delivered[dest] += 1;
            return Vec::new();
        }
        match self.next_hop[segment][dest] {
            Some((gw, port)) => self.gateway_ingress(gw, port, at, frame, dest, token),
            None => {
                self.drop_frame(at, token, DropReason::Unroutable, None, Some(segment));
                Vec::new()
            }
        }
    }

    /// A frame reaches gateway `gw` at `at`, bound for egress `port`.
    fn gateway_ingress(
        &mut self,
        gw: usize,
        port: usize,
        at: SimTime,
        frame: CanFrame,
        dest: usize,
        token: Option<usize>,
    ) -> Vec<Box<dyn Event<Topology>>> {
        let node = &mut self.gateways[gw];
        if node.dark {
            node.load.dropped_outage += 1;
            self.drop_frame(at, token, DropReason::GatewayOutage, Some(gw), None);
            return Vec::new();
        }
        match node.discipline {
            QueueDiscipline::DropTail { capacity } => {
                if node.queued_total >= capacity {
                    node.load.dropped_full += 1;
                    self.drop_frame(at, token, DropReason::BufferFull, Some(gw), None);
                    return Vec::new();
                }
            }
            QueueDiscipline::Pfc { quota } => {
                if node.ports[port].queue >= quota {
                    node.load.paused += 1;
                }
            }
        }
        node.queued_total += 1;
        node.ports[port].queue += 1;
        if node.queued_total > node.load.peak_queue {
            // Strictly-greater keeps the *first* time the peak was hit.
            node.load.peak_queue = node.queued_total;
            node.load.peak_at = at;
        }
        let release = at + node.delay;
        vec![Box::new(PortService {
            gw,
            port,
            release,
            frame,
            dest,
            token,
        })]
    }
}

// ---------------------------------------------------------------------
// Internal simulation events
// ---------------------------------------------------------------------

/// A frame is complete on a segment at its carried `at` time. All time
/// math below uses carried timestamps, never the scheduler clock, so
/// lazy run-ahead cannot perturb delivery times.
struct FrameArrival {
    at: SimTime,
    segment: usize,
    dest: usize,
    frame: CanFrame,
    token: Option<usize>,
}

impl Event<Topology> for FrameArrival {
    fn time(&self) -> EventTime {
        EventTime::Absolute(self.at)
    }
    fn exec(self: Box<Self>, _now: SimTime, net: &mut Topology) -> Vec<Box<dyn Event<Topology>>> {
        if net.segments[self.segment].down {
            net.drop_frame(
                self.at,
                self.token,
                DropReason::BusOff,
                None,
                Some(self.segment),
            );
            return Vec::new();
        }
        net.segment_arrival(self.at, self.segment, self.dest, self.frame, self.token)
    }
}

/// The head-of-line frame of a gateway port starts serialising onto its
/// egress segment. This is the analytic `SegmentForwarder` recurrence,
/// verbatim: `start = max(release, busy_until)`,
/// `delivered = start + frame_duration`,
/// `busy_until = start + frame_slot_duration`.
struct PortService {
    gw: usize,
    port: usize,
    release: SimTime,
    frame: CanFrame,
    dest: usize,
    token: Option<usize>,
}

impl Event<Topology> for PortService {
    fn time(&self) -> EventTime {
        EventTime::Absolute(self.release)
    }
    fn exec(self: Box<Self>, _now: SimTime, net: &mut Topology) -> Vec<Box<dyn Event<Topology>>> {
        let egress = net.gateways[self.gw].ports[self.port].egress;
        if net.segments[egress].down {
            net.gateways[self.gw].queued_total -= 1;
            net.gateways[self.gw].ports[self.port].queue -= 1;
            net.gateways[self.gw].load.dropped_bus_off += 1;
            net.drop_frame(
                self.release,
                self.token,
                DropReason::BusOff,
                Some(self.gw),
                Some(egress),
            );
            return Vec::new();
        }
        let seg = &mut net.segments[egress];
        let start = self.release.max(seg.busy_until);
        let delivered = start + frame_duration(&self.frame, seg.bitrate);
        seg.busy_until = start + frame_slot_duration(&self.frame, seg.bitrate);
        vec![Box::new(DeliverFrame {
            delivered,
            gw: self.gw,
            port: self.port,
            segment: egress,
            frame: self.frame,
            dest: self.dest,
            token: self.token,
        })]
    }
}

/// End of frame on the egress segment: the frame leaves the gateway
/// buffer and either reaches its sink or hops onward.
struct DeliverFrame {
    delivered: SimTime,
    gw: usize,
    port: usize,
    segment: usize,
    frame: CanFrame,
    dest: usize,
    token: Option<usize>,
}

impl Event<Topology> for DeliverFrame {
    fn time(&self) -> EventTime {
        EventTime::Absolute(self.delivered)
    }
    fn exec(self: Box<Self>, _now: SimTime, net: &mut Topology) -> Vec<Box<dyn Event<Topology>>> {
        net.gateways[self.gw].queued_total -= 1;
        net.gateways[self.gw].ports[self.port].queue -= 1;
        net.gateways[self.gw].load.forwarded += 1;
        net.segment_arrival(
            self.delivered,
            self.segment,
            self.dest,
            self.frame,
            self.token,
        )
    }
}

/// Flips a gateway's outage (dark) flag at a window edge.
struct SetGatewayDark {
    gateway: usize,
    at: SimTime,
    dark: bool,
}

impl Event<Topology> for SetGatewayDark {
    fn time(&self) -> EventTime {
        EventTime::Absolute(self.at)
    }
    fn exec(self: Box<Self>, _now: SimTime, net: &mut Topology) -> Vec<Box<dyn Event<Topology>>> {
        net.gateways[self.gateway].dark = self.dark;
        Vec::new()
    }
}

/// Flips a segment's bus-off flag at a window edge.
struct SetSegmentDown {
    segment: usize,
    at: SimTime,
    down: bool,
}

impl Event<Topology> for SetSegmentDown {
    fn time(&self) -> EventTime {
        EventTime::Absolute(self.at)
    }
    fn exec(self: Box<Self>, _now: SimTime, net: &mut Topology) -> Vec<Box<dyn Event<Topology>>> {
        net.segments[self.segment].down = self.down;
        Vec::new()
    }
}

/// The babbling idiot: one highest-priority frame now, the next one
/// `gap` later, until `stop`.
struct Babble {
    segment: usize,
    dest: usize,
    at: SimTime,
    stop: SimTime,
    gap: SimTime,
}

fn flood_frame() -> CanFrame {
    // lint:allow(panic-in-lib): id 0 is statically within the 11-bit range
    CanFrame::new(CanId::standard(0).expect("id 0 is valid"), &[0xAA; 8])
        // lint:allow(panic-in-lib): a static 8-byte payload is always well-formed
        .expect("static flood frame is well-formed")
}

impl Event<Topology> for Babble {
    fn time(&self) -> EventTime {
        EventTime::Absolute(self.at)
    }
    fn exec(self: Box<Self>, _now: SimTime, net: &mut Topology) -> Vec<Box<dyn Event<Topology>>> {
        if self.at >= self.stop {
            return Vec::new();
        }
        net.flood_injected += 1;
        vec![
            Box::new(FrameArrival {
                at: self.at,
                segment: self.segment,
                dest: self.dest,
                frame: flood_frame(),
                token: None,
            }),
            Box::new(Babble {
                at: self.at + self.gap,
                ..*self
            }),
        ]
    }
}

// ---------------------------------------------------------------------
// Simulation façade
// ---------------------------------------------------------------------

/// A [`Topology`] paired with its [`Scheduler`]: inject frames, apply
/// faults, run, and read outcomes.
///
/// # Example
///
/// ```
/// use canids_core::net::{NetOutcome, NetSim, QueueDiscipline, Topology};
/// use canids_can::frame::{CanFrame, CanId};
/// use canids_can::time::SimTime;
/// use canids_can::timing::Bitrate;
///
/// let mut b = Topology::builder();
/// let backbone = b.segment(Bitrate::HIGH_SPEED_1M);
/// let gw = b.gateway(backbone, SimTime::from_micros(20), QueueDiscipline::default());
/// let leaf = b.segment(Bitrate::HIGH_SPEED_1M);
/// b.port(gw, leaf);
/// let board = b.sink(leaf);
///
/// let mut sim = NetSim::new(b.build());
/// let f = CanFrame::new(CanId::standard(0x316)?, &[0; 8])?;
/// let token = sim.inject(SimTime::from_micros(100), backbone, board, f);
/// sim.run();
/// // 20 µs gateway delay plus the frame's own wire time on the leaf.
/// match sim.outcome(token) {
///     Some(NetOutcome::Delivered(t)) => assert!(t >= SimTime::from_micros(120)),
///     other => panic!("unexpected outcome {other:?}"),
/// }
/// # Ok::<(), canids_can::error::FrameError>(())
/// ```
pub struct NetSim {
    topology: Topology,
    sched: Scheduler<Topology>,
}

impl NetSim {
    /// Wraps a built topology with a fresh scheduler at time zero.
    pub fn new(topology: Topology) -> Self {
        NetSim {
            topology,
            sched: Scheduler::new(),
        }
    }

    /// Schedules a fault's window-edge (and babble) events.
    pub fn apply(&mut self, fault: Fault) {
        match fault {
            Fault::BabblingIdiot {
                segment,
                dest,
                start,
                stop,
                gap,
            } => self.sched.schedule(Box::new(Babble {
                segment: segment.0,
                dest: dest.0,
                at: start,
                stop,
                gap,
            })),
            Fault::BusOff {
                segment,
                start,
                end,
            } => {
                self.sched.schedule(Box::new(SetSegmentDown {
                    segment: segment.0,
                    at: start,
                    down: true,
                }));
                self.sched.schedule(Box::new(SetSegmentDown {
                    segment: segment.0,
                    at: end,
                    down: false,
                }));
            }
            Fault::GatewayOutage {
                gateway,
                start,
                end,
            } => {
                self.sched.schedule(Box::new(SetGatewayDark {
                    gateway: gateway.0,
                    at: start,
                    dark: true,
                }));
                self.sched.schedule(Box::new(SetGatewayDark {
                    gateway: gateway.0,
                    at: end,
                    dark: false,
                }));
            }
        }
    }

    /// Injects a frame completing on `segment` at `at`, addressed to
    /// `dest`; returns its outcome token.
    pub fn inject(
        &mut self,
        at: SimTime,
        segment: SegmentId,
        dest: SinkId,
        frame: CanFrame,
    ) -> FrameToken {
        let token = self.topology.outcomes.len();
        self.topology.outcomes.push(None);
        self.sched.schedule(Box::new(FrameArrival {
            at,
            segment: segment.0,
            dest: dest.0,
            frame,
            token: Some(token),
        }));
        FrameToken(token)
    }

    /// Runs until the event heap is empty.
    pub fn run(&mut self) {
        self.sched.run(&mut self.topology);
    }

    /// Runs every event with firing time `<= until`.
    pub fn run_until(&mut self, until: SimTime) {
        self.sched.run_until(&mut self.topology, until);
    }

    /// Runs until `token` has a terminal outcome and returns it.
    ///
    /// # Panics
    ///
    /// If the heap drains first — impossible for a frame accepted by
    /// [`NetSim::inject`], whose event chain always terminates in a
    /// delivery or an accounted drop.
    pub fn resolve(&mut self, token: FrameToken) -> NetOutcome {
        loop {
            if let Some(outcome) = self.topology.outcome(token) {
                return outcome;
            }
            if self.sched.step(&mut self.topology).is_none() {
                // lint:allow(panic-in-lib): frame conservation is the documented invariant (see net_properties)
                panic!("frame {token:?} left in flight with an empty event heap");
            }
        }
    }

    /// Outcome of an injected frame, if resolved yet.
    pub fn outcome(&self, token: FrameToken) -> Option<NetOutcome> {
        self.topology.outcome(token)
    }

    /// The node graph and its counters.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }

    /// Total events executed (for µs/event benchmarks).
    pub fn executed(&self) -> u64 {
        self.sched.executed()
    }
}

// ---------------------------------------------------------------------
// Fleet façade
// ---------------------------------------------------------------------

/// The fleet serving topology — one backbone segment fanning out
/// through one gateway per board onto that board's local segment — with
/// the lazy per-frame co-simulation API `serve::FleetBackend` drives.
///
/// Node id layout (documented for [`NetConfig::faults`]): segment 0 is
/// the backbone; board `b` owns gateway `b`, local segment `1 + b`, and
/// sink `b`.
///
/// Uncongested, each gateway behaves *exactly* like the analytic
/// [`canids_can::gateway::SegmentForwarder`]:
///
/// ```
/// use canids_core::net::{FleetNet, NetConfig, NetOutcome};
/// use canids_can::frame::{CanFrame, CanId};
/// use canids_can::gateway::SegmentForwarder;
/// use canids_can::time::SimTime;
/// use canids_can::timing::Bitrate;
///
/// let delay = SimTime::from_micros(20);
/// let mut net = FleetNet::single_backbone(2, Bitrate::HIGH_SPEED_1M, delay, &NetConfig::default());
/// let mut fwd = SegmentForwarder::new(Bitrate::HIGH_SPEED_1M, delay);
/// let f = CanFrame::new(CanId::standard(0x316)?, &[0; 8])?;
/// for t in [100, 150, 160] {
///     let arrival = SimTime::from_micros(t);
///     assert_eq!(
///         net.deliver(0, arrival, f),
///         NetOutcome::Delivered(fwd.forward(arrival, &f)),
///     );
/// }
/// # Ok::<(), canids_can::error::FrameError>(())
/// ```
pub struct FleetNet {
    sim: NetSim,
    backbone: SegmentId,
    boards: Vec<SinkId>,
    outages: Vec<(usize, SimTime, SimTime)>,
}

impl FleetNet {
    /// Builds the `shards`-board single-backbone topology: every
    /// segment runs at `bitrate`, every gateway forwards with `delay`
    /// under `config.discipline`, and `config.faults` are scheduled.
    pub fn single_backbone(
        shards: usize,
        bitrate: Bitrate,
        delay: SimTime,
        config: &NetConfig,
    ) -> Self {
        let mut b = Topology::builder();
        let backbone = b.segment(bitrate);
        let boards = (0..shards)
            .map(|_| {
                let gw = b.gateway(backbone, delay, config.discipline);
                let leaf = b.segment(bitrate);
                b.port(gw, leaf);
                b.sink(leaf)
            })
            .collect();
        let mut sim = NetSim::new(b.build());
        let mut outages = Vec::new();
        for &fault in &config.faults {
            if let Fault::GatewayOutage {
                gateway,
                start,
                end,
            } = fault
            {
                outages.push((gateway.0, start, end));
            }
            sim.apply(fault);
        }
        FleetNet {
            sim,
            backbone,
            boards,
            outages,
        }
    }

    /// Number of boards (shards).
    pub fn shards(&self) -> usize {
        self.boards.len()
    }

    /// Advances the simulation to `arrival`, injects the frame on the
    /// backbone addressed to `shard`'s board, and runs until its
    /// terminal outcome.
    pub fn deliver(&mut self, shard: usize, arrival: SimTime, frame: CanFrame) -> NetOutcome {
        self.sim.run_until(arrival);
        let token = self
            .sim
            .inject(arrival, self.backbone, self.boards[shard], frame);
        self.sim.resolve(token)
    }

    /// Drains any remaining (fault) events so end-of-run counters are
    /// final.
    pub fn finish(&mut self) {
        self.sim.run();
    }

    /// Per-gateway (= per-board) queue/occupancy counters.
    pub fn gateway_loads(&self) -> Vec<GatewayLoad> {
        self.sim.topology().gateway_loads()
    }

    /// Configured gateway outage windows as `(board, start, end)`, for
    /// the serve layer's admission event log.
    pub fn outage_windows(&self) -> &[(usize, SimTime, SimTime)] {
        &self.outages
    }

    /// Every accounted loss so far.
    pub fn drop_log(&self) -> &[DropRecord] {
        self.sim.topology().drop_log()
    }

    /// The underlying simulation (counters, clock, topology).
    pub fn sim(&self) -> &NetSim {
        &self.sim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canids_can::gateway::SegmentForwarder;

    fn frame(id: u16) -> CanFrame {
        let cid = CanId::standard(id).unwrap();
        CanFrame::new(cid, &[cid.low_byte(); 8]).unwrap()
    }

    #[test]
    fn scheduler_orders_by_time_then_sequence() {
        struct Tag(u64, u32);
        impl Event<Vec<u32>> for Tag {
            fn time(&self) -> EventTime {
                EventTime::Absolute(SimTime::from_nanos(self.0))
            }
            fn exec(
                self: Box<Self>,
                _now: SimTime,
                log: &mut Vec<u32>,
            ) -> Vec<Box<dyn Event<Vec<u32>>>> {
                log.push(self.1);
                Vec::new()
            }
        }
        let mut sched = Scheduler::new();
        for (t, tag) in [(500, 0), (100, 1), (100, 2), (300, 3), (100, 4)] {
            sched.schedule(Box::new(Tag(t, tag)));
        }
        let mut log = Vec::new();
        sched.run(&mut log);
        assert_eq!(log, vec![1, 2, 4, 3, 0]);
        assert_eq!(sched.executed(), 5);
        assert_eq!(sched.now(), SimTime::from_nanos(500));
    }

    #[test]
    fn delta_events_resolve_against_firing_time() {
        struct Chain(u32);
        impl Event<Vec<SimTime>> for Chain {
            fn time(&self) -> EventTime {
                EventTime::Delta(SimTime::from_micros(10))
            }
            fn exec(
                self: Box<Self>,
                now: SimTime,
                log: &mut Vec<SimTime>,
            ) -> Vec<Box<dyn Event<Vec<SimTime>>>> {
                log.push(now);
                if self.0 > 0 {
                    vec![Box::new(Chain(self.0 - 1))]
                } else {
                    Vec::new()
                }
            }
        }
        let mut sched = Scheduler::new();
        sched.schedule(Box::new(Chain(2)));
        let mut log = Vec::new();
        sched.run(&mut log);
        let us = |n| SimTime::from_micros(n);
        assert_eq!(log, vec![us(10), us(20), us(30)]);
    }

    #[test]
    fn uncongested_fleet_gateway_matches_segment_forwarder_exactly() {
        let delay = SimTime::from_micros(20);
        let wire = Bitrate::HIGH_SPEED_500K;
        let mut net = FleetNet::single_backbone(3, wire, delay, &NetConfig::default());
        let mut forwarders: Vec<SegmentForwarder> =
            (0..3).map(|_| SegmentForwarder::new(wire, delay)).collect();
        // Includes back-to-back arrivals that queue behind the far wire.
        let arrivals = [0u64, 5, 10, 11, 400, 401, 402, 9_000];
        for (i, &us) in arrivals.iter().enumerate() {
            let shard = i % 3;
            let f = frame(0x100 + i as u16);
            let at = SimTime::from_micros(us);
            let expect = forwarders[shard].forward(at, &f);
            assert_eq!(
                net.deliver(shard, at, f),
                NetOutcome::Delivered(expect),
                "frame {i} diverged from the analytic path"
            );
        }
        let loads = net.gateway_loads();
        assert_eq!(loads.len(), 3);
        assert_eq!(loads.iter().map(|l| l.forwarded).sum::<u64>(), 8);
        assert_eq!(loads.iter().map(|l| l.dropped()).sum::<u64>(), 0);
        assert!(loads.iter().all(|l| l.queued == 0 && l.peak_queue >= 1));
    }

    /// One gateway, two ports: flood port 0 hard. Shared drop-tail
    /// starves the far port; PFC keeps it flowing.
    fn two_port_flood(discipline: QueueDiscipline) -> (Vec<NetOutcome>, Vec<NetOutcome>, Topology) {
        let mut b = Topology::builder();
        let backbone = b.segment(Bitrate::HIGH_SPEED_1M);
        let gw = b.gateway(backbone, SimTime::from_micros(20), discipline);
        let near = b.segment(Bitrate::LOW_SPEED_125K);
        let far = b.segment(Bitrate::HIGH_SPEED_1M);
        b.port(gw, near);
        b.port(gw, far);
        let near_board = b.sink(near);
        let far_board = b.sink(far);
        let mut sim = NetSim::new(b.build());
        // ~8x the 125 kb/s service rate for 50 ms.
        sim.apply(Fault::BabblingIdiot {
            segment: SegmentId(0),
            dest: near_board,
            start: SimTime::ZERO,
            stop: SimTime::from_millis(50),
            gap: SimTime::from_micros(120),
        });
        let mut near_tokens = Vec::new();
        let mut far_tokens = Vec::new();
        for i in 0..40u64 {
            let at = SimTime::from_millis(10) + SimTime::from_micros(1_000 * i);
            near_tokens.push(sim.inject(at, backbone, near_board, frame(0x200)));
            far_tokens.push(sim.inject(at, backbone, far_board, frame(0x300)));
        }
        sim.run();
        let outcome = |tokens: &[FrameToken]| {
            tokens
                .iter()
                .map(|&t| sim.outcome(t).expect("resolved"))
                .collect::<Vec<_>>()
        };
        (outcome(&near_tokens), outcome(&far_tokens), sim.topology)
    }

    #[test]
    fn drop_tail_flood_starves_the_far_port() {
        let (near, far, topo) = two_port_flood(QueueDiscipline::DropTail { capacity: 16 });
        let far_dropped = far
            .iter()
            .filter(|o| matches!(o, NetOutcome::Dropped(DropReason::BufferFull)))
            .count();
        assert!(
            far_dropped > 0,
            "shared buffer must starve the far port under flood"
        );
        let near_dropped = near
            .iter()
            .filter(|o| matches!(o, NetOutcome::Dropped(_)))
            .count();
        assert!(near_dropped > 0);
        assert!(topo.gateway_loads()[0].dropped_full > 0);
    }

    #[test]
    fn pfc_flood_backpressures_without_starving_the_far_port() {
        let (near, far, topo) = two_port_flood(QueueDiscipline::Pfc { quota: 16 });
        assert!(
            far.iter().all(|o| matches!(o, NetOutcome::Delivered(_))),
            "PFC must keep the far port flowing"
        );
        // The flooded port backs up (paused), but nothing is dropped.
        assert!(
            near.iter().all(|o| matches!(o, NetOutcome::Delivered(_))),
            "PFC holds frames instead of dropping them"
        );
        let load = &topo.gateway_loads()[0];
        assert!(load.paused > 0, "flood must trip the pause watermark");
        assert_eq!(load.dropped(), 0);
        assert!(load.peak_queue > 16);
        assert!(load.peak_at > SimTime::ZERO);
    }

    #[test]
    fn gateway_peak_at_stamps_the_first_peak() {
        // Fast backbone feeding a slow leaf through one gateway: the
        // burst piles up in the gateway buffer, so the peak is hit at a
        // deterministic carried timestamp.
        let burst = |times: &[u64]| {
            let mut b = Topology::builder();
            let backbone = b.segment(Bitrate::HIGH_SPEED_1M);
            let gw = b.gateway(
                backbone,
                SimTime::from_micros(20),
                QueueDiscipline::default(),
            );
            let leaf = b.segment(Bitrate::LOW_SPEED_125K);
            b.port(gw, leaf);
            let board = b.sink(leaf);
            let mut sim = NetSim::new(b.build());
            for (i, &us) in times.iter().enumerate() {
                sim.inject(
                    SimTime::from_micros(us),
                    backbone,
                    board,
                    frame(0x100 + i as u16),
                );
            }
            sim.run();
            sim.topology.gateway_loads()[0]
        };
        let early = burst(&[0, 1, 2, 3]);
        assert!(early.peak_queue >= 2, "back-to-back burst must overlap");
        assert!(early.peak_at > SimTime::ZERO);
        // A second, identical burst long after the queue drained re-hits
        // the same depth; the stamp keeps the *first* occurrence.
        let repeated = burst(&[0, 1, 2, 3, 50_000, 50_001, 50_002, 50_003]);
        assert_eq!(repeated.peak_queue, early.peak_queue);
        assert_eq!(repeated.peak_at, early.peak_at);
    }

    #[test]
    fn gateway_outage_drops_exactly_the_dark_window() {
        let config = NetConfig {
            faults: vec![Fault::GatewayOutage {
                gateway: GatewayId(0),
                start: SimTime::from_micros(500),
                end: SimTime::from_micros(900),
            }],
            ..NetConfig::default()
        };
        let mut net =
            FleetNet::single_backbone(1, Bitrate::HIGH_SPEED_1M, SimTime::from_micros(20), &config);
        // Window is [start, end): 500 is dark, 900 is back up.
        for (us, dark) in [
            (0, false),
            (499, false),
            (500, true),
            (899, true),
            (900, false),
        ] {
            let outcome = net.deliver(0, SimTime::from_micros(us), frame(0x111));
            match (dark, outcome) {
                (true, NetOutcome::Dropped(DropReason::GatewayOutage)) => {}
                (false, NetOutcome::Delivered(_)) => {}
                other => panic!("frame at {us} µs: unexpected {other:?}"),
            }
        }
        assert_eq!(net.gateway_loads()[0].dropped_outage, 2);
        assert_eq!(net.outage_windows().len(), 1);
    }

    #[test]
    fn bus_off_window_kills_frames_released_into_it() {
        let mut b = Topology::builder();
        let backbone = b.segment(Bitrate::HIGH_SPEED_1M);
        let gw = b.gateway(
            backbone,
            SimTime::from_micros(20),
            QueueDiscipline::default(),
        );
        let leaf = b.segment(Bitrate::HIGH_SPEED_1M);
        b.port(gw, leaf);
        let board = b.sink(leaf);
        let mut sim = NetSim::new(b.build());
        sim.apply(Fault::BusOff {
            segment: SegmentId(1),
            start: SimTime::from_micros(100),
            end: SimTime::from_micros(200),
        });
        // Release = arrival + 20 µs: arrivals at 90/170 µs release inside
        // the window, an arrival at 190 µs releases after it closes.
        let dead_a = sim.inject(SimTime::from_micros(90), backbone, board, frame(1));
        let dead_b = sim.inject(SimTime::from_micros(170), backbone, board, frame(2));
        let live = sim.inject(SimTime::from_micros(190), backbone, board, frame(3));
        sim.run();
        for t in [dead_a, dead_b] {
            assert_eq!(
                sim.outcome(t),
                Some(NetOutcome::Dropped(DropReason::BusOff))
            );
        }
        assert!(matches!(sim.outcome(live), Some(NetOutcome::Delivered(_))));
        assert_eq!(sim.topology().gateway_loads()[0].dropped_bus_off, 2);
    }

    #[test]
    fn unroutable_sink_is_an_accounted_drop() {
        let mut b = Topology::builder();
        let a = b.segment(Bitrate::HIGH_SPEED_1M);
        let other = b.segment(Bitrate::HIGH_SPEED_1M);
        let stranded = b.sink(other); // no gateway reaches it from `a`
        let mut sim = NetSim::new(b.build());
        let t = sim.inject(SimTime::from_micros(1), a, stranded, frame(9));
        sim.run();
        assert_eq!(
            sim.outcome(t),
            Some(NetOutcome::Dropped(DropReason::Unroutable))
        );
        assert_eq!(sim.topology().drop_log().len(), 1);
        assert_eq!(sim.topology().drop_log()[0].token, Some(t));
    }

    #[test]
    fn two_hop_chain_routes_and_conserves_frames() {
        // backbone -> gw0 -> mid -> gw1 -> leaf -> sink
        let mut b = Topology::builder();
        let backbone = b.segment(Bitrate::HIGH_SPEED_1M);
        let mid = b.segment(Bitrate::HIGH_SPEED_500K);
        let leaf = b.segment(Bitrate::MEDIUM_250K);
        let gw0 = b.gateway(
            backbone,
            SimTime::from_micros(10),
            QueueDiscipline::default(),
        );
        b.port(gw0, mid);
        let gw1 = b.gateway(mid, SimTime::from_micros(10), QueueDiscipline::default());
        b.port(gw1, leaf);
        let board = b.sink(leaf);
        let mut sim = NetSim::new(b.build());
        let tokens: Vec<FrameToken> = (0..20)
            .map(|i| {
                sim.inject(
                    SimTime::from_micros(50 * i),
                    backbone,
                    board,
                    frame(i as u16),
                )
            })
            .collect();
        sim.run();
        let mut last = SimTime::ZERO;
        for t in tokens {
            match sim.outcome(t) {
                Some(NetOutcome::Delivered(at)) => {
                    assert!(at > last, "two-hop deliveries must stay FIFO");
                    last = at;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(sim.topology().sinks_delivered()[board.0], 20);
        assert_eq!(sim.topology().in_flight(), 0);
        let loads = sim.topology().gateway_loads();
        assert_eq!(loads[0].forwarded, 20);
        assert_eq!(loads[1].forwarded, 20);
    }
}
