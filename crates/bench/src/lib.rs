//! Shared helpers for the benchmark harness: paper-scale pipeline
//! configurations and quick model constructors used by both the
//! table-generator binaries and the Criterion benches.

use canids_can::time::SimTime;
use canids_core::pipeline::PipelineConfig;
use canids_dataflow::ip::{AcceleratorIp, CompileConfig};
use canids_qnn::export::IntegerMlp;
use canids_qnn::mlp::{MlpConfig, QuantMlp};

/// The capture length used by the table binaries (long enough for
/// paper-band metrics, short enough to regenerate in seconds).
pub fn harness_duration() -> SimTime {
    SimTime::from_secs(12)
}

/// Paper-scale DoS pipeline configuration for the harness.
pub fn harness_dos() -> PipelineConfig {
    PipelineConfig {
        capture_duration: harness_duration(),
        ..PipelineConfig::dos()
    }
}

/// Paper-scale Fuzzy pipeline configuration for the harness.
pub fn harness_fuzzy() -> PipelineConfig {
    PipelineConfig {
        capture_duration: harness_duration(),
        ..PipelineConfig::fuzzy()
    }
}

/// An untrained (weights-seeded) integer model with the paper topology —
/// sufficient for latency/resource benches, which do not depend on
/// weight values.
pub fn untrained_model() -> IntegerMlp {
    QuantMlp::new(MlpConfig::paper_4bit())
        .expect("paper topology is valid")
        .export()
        .expect("export of a fresh model succeeds")
}

/// A compiled IP of the paper topology.
pub fn untrained_ip() -> AcceleratorIp {
    AcceleratorIp::compile(&untrained_model(), CompileConfig::default())
        .expect("compilation of the paper topology succeeds")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_produce_paper_topology() {
        let model = untrained_model();
        assert_eq!(model.layer_dims(), vec![(75, 64), (64, 32), (32, 2)]);
        let ip = untrained_ip();
        assert_eq!(ip.input_dim(), 75);
        assert_eq!(harness_dos().capture_duration, harness_duration());
        assert_eq!(harness_fuzzy().capture_duration, harness_duration());
    }
}
