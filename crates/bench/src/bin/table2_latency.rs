//! Regenerates **Table II**: per-message latency comparison against the
//! literature IDSs on their platforms.
//!
//! ```sh
//! cargo run --release -p canids-bench --bin table2_latency
//! ```

use canids_bench::harness_dos;
use canids_core::prelude::*;

fn fmt_latency(t: SimTime) -> String {
    if t.as_nanos() >= 1_000_000 {
        format!("{:.1} ms", t.as_millis_f64())
    } else {
        format!("{:.3} ms", t.as_millis_f64())
    }
}

fn main() -> Result<(), CoreError> {
    eprintln!("[table2] running the QMLP pipeline for the measured row ...");
    let report = IdsPipeline::new(harness_dos()).run()?;

    let mut table = Table::new(
        "Table II — per-message latency comparison",
        &["Model", "Latency", "Frames", "Platform", "Modelled here"],
    );
    let published = table2_rows();
    let modelled = table2_workloads();
    for (row, w) in published.iter().zip(&modelled) {
        table.push_row(&[
            row.model.to_owned(),
            fmt_latency(row.latency),
            if row.frames == 1 {
                "per CAN frame".to_owned()
            } else {
                format!("{} CAN frames", row.frames)
            },
            row.platform.to_owned(),
            fmt_latency(w.latency_per_invocation()),
        ]);
    }
    let paper = table2_qmlp_paper();
    table.push_row(&[
        "4-bit-QMLP (ours)".to_owned(),
        fmt_latency(paper.latency),
        "per CAN frame".to_owned(),
        "Zynq Ultrascale+".to_owned(),
        fmt_latency(report.ecu.mean_latency),
    ]);
    println!("{table}");

    let mth = published
        .iter()
        .find(|r| r.model.starts_with("MTH"))
        .expect("MTH row present");
    let speedup = mth.latency.as_secs_f64() / report.ecu.mean_latency.as_secs_f64();
    println!(
        "measured per-message latency {:.3} ms -> {speedup:.1}x vs MTH-IDS (paper: 4.8x)",
        report.ecu.mean_latency.as_millis_f64()
    );
    println!(
        "note: block-based rows amortise over their block; the acquisition delay of\n the block (frames x ~0.12-0.25 ms) is not included, as the paper points out"
    );
    Ok(())
}
