//! Regenerates the in-text throughput result: "our QMLP coupled ECU can
//! process over 8300 messages per second at highest payload capacity,
//! achieving near-line-rate detection on high-speed critical CAN".
//!
//! ```sh
//! cargo run --release -p canids-bench --bin text_throughput
//! ```

use canids_bench::harness_dos;
use canids_core::prelude::*;

fn main() -> Result<(), CoreError> {
    // 1. Line rate from the wire format.
    let mut table = Table::new(
        "E3 — line rate and ECU service rate",
        &["Quantity", "Value", "Paper"],
    );
    let line_1m = max_frame_rate(Bitrate::HIGH_SPEED_1M, 8).unwrap();
    let line_500k = max_frame_rate(Bitrate::HIGH_SPEED_500K, 8).unwrap();
    table.push_row(&[
        "1 Mb/s line rate, 8-byte frames".to_owned(),
        format!("{line_1m:.0} frames/s"),
        ">8300 msg/s".to_owned(),
    ]);
    table.push_row(&[
        "500 kb/s line rate, 8-byte frames".to_owned(),
        format!("{line_500k:.0} frames/s"),
        "-".to_owned(),
    ]);

    // 2. ECU service rate from the pipeline.
    eprintln!("[throughput] running pipeline ...");
    let report = IdsPipeline::new(harness_dos()).run()?;
    let service = 1.0 / report.ecu.mean_latency.as_secs_f64();
    table.push_row(&[
        "ECU IDS service rate".to_owned(),
        format!("{service:.0} frames/s"),
        "near line rate".to_owned(),
    ]);

    // 3. Accelerator peak (hardware alone).
    table.push_row(&[
        "accelerator peak (streaming)".to_owned(),
        format!("{:.0} frames/s", report.ip.peak_throughput_fps()),
        "-".to_owned(),
    ]);
    println!("{table}");

    let near_line_rate = service >= line_1m * 0.98;
    println!(
        "service {:.0}/s vs 1 Mb/s line rate {:.0}/s -> near-line-rate: {}",
        service, line_1m, near_line_rate
    );

    // 4. Streaming serving mode: replay saturated captures frame-at-a-
    // time through the trained detector at true bus pacing, measuring
    // real software service times (scenarios run on scoped threads).
    eprintln!("[throughput] streaming line-rate replay ...");
    let duration = SimTime::from_millis(500);
    let dos = Some(AttackProfile::dos().with_schedule(BurstSchedule::Continuous));
    let scenarios = [
        LineRateScenario::classic_1m("normal @ 1 Mb/s", None, duration),
        LineRateScenario::classic_1m("DoS flood @ 1 Mb/s", dos, duration),
        LineRateScenario::fd_class("DoS flood @ FD-class 5 Mb/s", dos, duration),
    ];
    let serve_scenarios: Vec<ServeScenario<'_>> = scenarios
        .iter()
        .map(|s| ServeScenario {
            name: s.name.clone(),
            source: CaptureSource::Generate(canids_dataset::generator::TrafficConfig {
                duration: s.duration,
                attack: s.attack,
                seed: s.seed,
                ..canids_dataset::generator::TrafficConfig::default()
            }),
            config: s.replay_config(),
        })
        .collect();
    let model = report.detector.int_mlp.clone();
    let streaming = ServeHarness::sweep(
        || Ok(SoftwareBackend::single(model.clone())),
        &serve_scenarios,
    )?;
    let mut stream_table = Table::new(
        "E3b — streaming line-rate serving (frame-at-a-time)",
        &ServeReport::table_header(),
    );
    for r in &streaming {
        stream_table.push_row(&r.table_row());
    }
    println!("{stream_table}");
    if let Some(note) = canids_core::stream::contention_note(scenarios.len()) {
        println!("{note}");
    }
    Ok(())
}
