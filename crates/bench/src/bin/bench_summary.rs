//! Per-PR perf snapshot: times the hot substrates the ROADMAP tracks
//! (dense linear forward, cycle-accurate simulator step, streaming
//! line-rate harness, N-detector multi-model line rate, cross-ECU fleet
//! line rate, and — since PR 5 — the unified serving harness with the
//! measured-value admission contrast) and writes them as a small JSON
//! file so the per-PR perf trajectory accumulates in-tree.
//!
//! The `line_rate_harness`/`multi_line_rate`/`fleet_line_rate` sections
//! keep their historical schema (same keys, same denominators) but run
//! through the unified serving harness directly — the deprecated
//! wrappers are gone — so the perf trajectory stays comparable across
//! PRs; the `serve` section is the unified view and the `net` section
//! times the event-driven network core.
//!
//! Since PR 8 the `linear_forward` section also times the reassociated
//! fast inference kernel (`fast_median_us`), and the `serve` section
//! carries a `scaleout` sweep: sharded software replay capacity by
//! shard count and dispatch batch size. Since PR 9 the `serve` section
//! adds a `telemetry` subsection: deterministic per-stage sim-time
//! breakdowns (featurise/pack/infer from the software path, dma_window
//! from the batched ECU path, gateway_hop from the event-driven fleet
//! transport) captured by the in-tree telemetry probe.
//!
//! Since PR 10 the `serve` section carries a `population` subsection:
//! the multi-tenant capacity curve — how many concurrent 500 kb/s
//! tenant streams one process sustains at zero drops through the
//! population layer — plus a shed-engaged overload row where more
//! streams than pool slots forces cross-tenant admission control.
//!
//! ```sh
//! cargo run --release -p canids-bench --bin bench_summary [out.json]
//! ```
//!
//! Defaults to `BENCH_10.json` in the current directory.

use std::fmt::Write as _;

use canids_bench::untrained_model;
use canids_can::frame::{CanFrame, CanId};
use canids_can::time::SimTime;
use canids_can::timing::Bitrate;
use canids_core::deploy::{DeploymentPlan, DetectorBundle, PlanConfig};
use canids_core::fleet::{AdmissionPolicy, BoardSpec, FleetConfig, FleetPlan};
use canids_core::net::{Fault, FleetNet, NetConfig, NetSim, QueueDiscipline, Topology};
use canids_core::population::{Population, PopulationConfig, TenantAdmission, TenantStream};
use canids_core::serve::{
    EcuBackend, FleetAction, FleetTransport, ReplayConfig, ServeHarness, ServeReport,
    SoftwareBackend,
};
use canids_core::stream::LineRateScenario;
use canids_core::telemetry::{Stage, TelemetryConfig, WallClock};
use canids_core::ShardWorkers;
use canids_dataflow::folding::{auto_fold, FoldingGoal};
use canids_dataflow::graph::DataflowGraph;
use canids_dataflow::ip::CompileConfig;
use canids_dataflow::simulator::{AcceleratorSim, SimConfig};
use canids_dataset::attacks::{AttackKind, AttackProfile, BurstSchedule};
use canids_dataset::generator::{DatasetBuilder, TrafficConfig};
use canids_qnn::mlp::{MlpConfig, QuantMlp};
use canids_qnn::tensor::linear_forward_fast;
use canids_qnn::tensor::{linear_forward, Matrix};
use canids_soc::ecu::{EcuConfig, SchedPolicy};

fn pseudo_matrix(rows: usize, cols: usize, seed: u32) -> Matrix {
    let mut state = seed | 1;
    let mut data = Vec::with_capacity(rows * cols);
    for _ in 0..rows * cols {
        state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
        data.push(((state >> 16) as f32 / 32768.0) - 1.0);
    }
    Matrix::from_vec(rows, cols, data)
}

/// Median wall time of `f` in microseconds over `iters` runs. Wall time
/// is the measured quantity here, read through the telemetry crate's
/// single audited [`WallClock`] gate.
fn median_us<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = WallClock::start();
        f();
        samples.push(t0.elapsed().as_secs_f64() * 1e6);
    }
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// The PR number a snapshot path encodes (`BENCH_<n>.json` → `n`), so
/// `bench_summary BENCH_3.json` labels itself correctly without a
/// source edit each PR. Names not ending in `_<n>` label as 0.
fn pr_number(path: &str) -> u32 {
    std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .and_then(|stem| stem.rsplit('_').next())
        .and_then(|tail| tail.parse().ok())
        .unwrap_or(0)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_10.json".to_owned());
    let pr = pr_number(&out_path);

    // 1. The ROADMAP's named hot kernel: linear_forward at the paper's
    // first-layer shape (batch 64, 75 -> 64). The seed baseline was
    // ~120 us scalar.
    let x = pseudo_matrix(64, 75, 1);
    let w = pseudo_matrix(64, 75, 2);
    let b = vec![0.1f32; 64];
    let mut sink = 0.0f32;
    let linear_us = median_us(400, || {
        let y = linear_forward(&x, &w, &b);
        // lint:allow(float-reassociation): optimiser sink defeating dead-code elimination; never reported
        sink += y.as_slice()[0];
    });
    // The reassociated inference kernel at the identical shape — the
    // eval-path speedup the lint gate audits.
    let fast_us = median_us(400, || {
        let y = linear_forward_fast(&x, &w, &b);
        // lint:allow(float-reassociation): optimiser sink defeating dead-code elimination; never reported
        sink += y.as_slice()[0];
    });

    // 2. Cycle-accurate simulator: paper model, sequential folding (the
    // heaviest fold), 20 frames — report wall us per simulated frame.
    let model = untrained_model();
    let graph = DataflowGraph::from_integer_mlp(&model).expect("paper model lowers");
    let folding = auto_fold(&graph, FoldingGoal::MinResource).expect("sequential folding");
    let sim = AcceleratorSim::new(graph, &folding, SimConfig::default()).expect("sim builds");
    let inputs: Vec<Vec<u32>> = (0..20).map(|i| vec![u32::from(i % 2 == 0); 75]).collect();
    let sim_us_total = median_us(5, || {
        let report = sim.run(&inputs);
        // lint:allow(float-reassociation): optimiser sink defeating dead-code elimination; never reported
        sink += report.total_cycles as f32;
    });
    let sim_us_per_frame = sim_us_total / inputs.len() as f64;

    // 3. Streaming line-rate harness: saturated DoS replay at classic
    // 1 Mb/s and a CAN-FD-class rate (untrained weights — the harness
    // measures serving speed, not accuracy). Scenarios run one at a
    // time here, not scenario-parallel: the snapshot should time an
    // uncontended evaluator, not thread scheduling noise. The section
    // keeps the historical schema: `offered_fps` over the last arrival
    // (captures start at the bus epoch) and `keeps_up` requiring the
    // measured service capacity to cover the offered load.
    let duration = SimTime::from_millis(400);
    let dos = Some(AttackProfile::dos().with_schedule(BurstSchedule::Continuous));
    let scenarios = [
        LineRateScenario::classic_1m("dos_1m", dos, duration),
        LineRateScenario::fd_class("dos_fd5m", dos, duration),
    ];
    let reports: Vec<_> = scenarios
        .iter()
        .map(|scenario| {
            let capture = scenario.generate_capture();
            let r = ServeHarness::new(SoftwareBackend::single(model.clone()))
                .replay(&capture, &scenario.replay_config())
                .expect("software replay");
            (scenario.name.clone(), scenario.bitrate.bits_per_sec(), r)
        })
        .collect();

    // 4. N-detector deployment engine: the acceptance fleet (DoS, fuzzy,
    // gear-spoof, RPM-spoof + one duplicate of each = 8 IPs) planned by
    // the folding-budget allocator, compiled once, then a saturated
    // 1 Mb/s DoS replay through the simulated ECU under every scheduling
    // policy. Timing here is *simulated* SoC time (driver, DMA, IRQ,
    // FIFO), so the per-policy p50/p99/drops are platform facts, not
    // host noise.
    let kinds = [
        AttackKind::Dos,
        AttackKind::Fuzzy,
        AttackKind::GearSpoof,
        AttackKind::RpmSpoof,
    ];
    let bundles: Vec<DetectorBundle> = (0..8)
        .map(|i| {
            let mlp = QuantMlp::new(MlpConfig {
                seed: 300 + i as u64,
                ..MlpConfig::paper_4bit()
            })
            .expect("paper topology");
            DetectorBundle::new(kinds[i % 4], mlp.export().expect("export"))
        })
        .collect();
    let plan =
        DeploymentPlan::build(&bundles, &PlanConfig::default()).expect("8-detector plan fits");
    let deployment = plan
        .deploy(&bundles, &CompileConfig::default(), EcuConfig::default())
        .expect("8-detector deployment compiles");
    let multi_capture = DatasetBuilder::new(TrafficConfig {
        duration,
        attack: dos,
        seed: 0x8DE7,
        ..TrafficConfig::default()
    })
    .build();
    let policies = [
        SchedPolicy::Sequential,
        SchedPolicy::RoundRobin,
        SchedPolicy::DmaBatch { batch: 32 },
        SchedPolicy::InterruptPerFrame,
    ];
    let multi_reports: Vec<_> = policies
        .iter()
        .map(|&policy| {
            ServeHarness::new(EcuBackend::new(&deployment))
                .replay(&multi_capture, &ReplayConfig::default().with_policy(policy))
                .expect("multi line-rate replay")
        })
        .collect();

    // 5. Cross-ECU fleet: the ISSUE-4 acceptance scenario — 12 detectors
    // sharded two per board over six boards of three device classes,
    // replayed through the gateway model. The DMA-batch integration
    // absorbs the saturated 1 Mb/s backbone; a per-message sequential
    // overload at 750 kb/s contrasts today's FIFO drops with the
    // shed-lowest-value admission policy (graceful degradation, zero
    // drops).
    let fleet_bundles: Vec<DetectorBundle> = (0..12)
        .map(|i| {
            let mlp = QuantMlp::new(MlpConfig {
                seed: 400 + i as u64,
                ..MlpConfig::paper_4bit()
            })
            .expect("paper topology");
            DetectorBundle::new(kinds[i % 4], mlp.export().expect("export"))
        })
        .collect();
    let fleet_config = FleetConfig::new(vec![
        BoardSpec::zcu104("zcu-a"),
        BoardSpec::zcu104("zcu-b"),
        BoardSpec::ultra96("u96-a"),
        BoardSpec::ultra96("u96-b"),
        BoardSpec::pynq_z2("pynq-a"),
        BoardSpec::pynq_z2("pynq-b"),
    ])
    .with_model_cap(2);
    let fleet_plan = FleetPlan::build(&fleet_bundles, &fleet_config).expect("fleet plan fits");
    let fleet = fleet_plan
        .deploy(&fleet_bundles, &CompileConfig::default())
        .expect("fleet compiles");
    let priorities: Vec<u32> = (0..12u32).map(|i| 100 - i).collect();
    let overload_ecu = EcuConfig {
        policy: SchedPolicy::Sequential,
        ..EcuConfig::default()
    };
    let fleet_replays = [
        (
            "dma-batch-32 @ 1M",
            ReplayConfig::default().with_policy(SchedPolicy::DmaBatch { batch: 32 }),
        ),
        (
            "sequential @ 750k (drop-frames)",
            ReplayConfig {
                bitrate: Bitrate::new(750_000),
                ecu: overload_ecu,
                ..ReplayConfig::default()
            },
        ),
        (
            "sequential @ 750k (shed-lowest-value)",
            ReplayConfig {
                bitrate: Bitrate::new(750_000),
                ecu: overload_ecu,
                admission: AdmissionPolicy::ShedLowestValue {
                    priorities: priorities.clone(),
                },
                ..ReplayConfig::default()
            },
        ),
    ];
    let fleet_reports: Vec<_> = fleet_replays
        .iter()
        .map(|(label, config)| {
            (
                *label,
                ServeHarness::new(fleet.serve_backend())
                    .replay(&multi_capture, config)
                    .expect("fleet replay"),
            )
        })
        .collect();

    // 6. The event-driven network core: wall cost per scheduler event,
    // delivered frames/sec at 1 Mb/s through the 2-segment (1 board)
    // and 4-segment (3 board) backbone topologies, and flood-drop
    // counts per queue discipline on a 2-port gateway under a 50 ms
    // babbling-idiot attack.
    let gw_delay = SimTime::from_micros(20);
    let bench_frame = CanFrame::new(CanId::standard(0x100).unwrap(), &[0u8; 8]).unwrap();
    let mut net_fps = |boards: usize| -> (f64, f64) {
        let frames_per_board = 2_000u64;
        // Host wall time is the measured quantity (frames/s of the
        // simulator itself), read through the audited WallClock gate.
        let t0 = WallClock::start();
        let mut net = FleetNet::single_backbone(
            boards,
            Bitrate::HIGH_SPEED_1M,
            gw_delay,
            &NetConfig::default(),
        );
        for i in 0..frames_per_board {
            let at = SimTime::from_micros(120 * i);
            for b in 0..boards {
                // lint:allow(float-reassociation): optimiser sink defeating dead-code elimination; never reported
                sink += matches!(
                    net.deliver(b, at, bench_frame),
                    canids_core::net::NetOutcome::Delivered(_)
                ) as u32 as f32;
            }
        }
        net.finish();
        let wall = t0.elapsed().as_secs_f64();
        let events = net.sim().executed().max(1) as f64;
        (
            (frames_per_board * boards as u64) as f64 / wall,
            wall * 1e6 / events,
        )
    };
    let (net_fps_2seg, _) = net_fps(1);
    let (net_fps_4seg, net_us_per_event) = net_fps(3);
    let flood_drops = |discipline: QueueDiscipline| -> (u64, u64) {
        let mut b = Topology::builder();
        let backbone = b.segment(Bitrate::HIGH_SPEED_1M);
        let near = b.segment(Bitrate::new(125_000));
        let far = b.segment(Bitrate::HIGH_SPEED_1M);
        let gw = b.gateway(backbone, gw_delay, discipline);
        b.port(gw, near);
        b.port(gw, far);
        let near_sink = b.sink(near);
        let far_sink = b.sink(far);
        let mut sim = NetSim::new(b.build());
        sim.apply(Fault::BabblingIdiot {
            segment: backbone,
            dest: near_sink,
            start: SimTime::ZERO,
            stop: SimTime::from_millis(50),
            gap: SimTime::from_micros(120),
        });
        for i in 0..40u64 {
            let at = SimTime::from_millis(10) + SimTime::from_micros(1_000 * i);
            sim.inject(at, backbone, near_sink, bench_frame);
            sim.inject(at, backbone, far_sink, bench_frame);
        }
        sim.run();
        let loads = sim.topology().gateway_loads();
        (
            loads.iter().map(|l| l.dropped()).sum(),
            loads.iter().map(|l| l.paused).sum(),
        )
    };
    let (drop_tail_dropped, _) = flood_drops(QueueDiscipline::DropTail { capacity: 16 });
    let (pfc_dropped, pfc_paused) = flood_drops(QueueDiscipline::Pfc { quota: 16 });

    // 7. The unified serving harness (PR 5): the same substrates through
    // one ServeHarness — software / 8-detector ECU / 12-detector fleet
    // on the shared DoS capture under the DMA-batch integration.
    let serve_config = ReplayConfig::default().with_policy(SchedPolicy::DmaBatch { batch: 32 });
    let serve_rows: Vec<canids_core::ServeReport> = vec![
        ServeHarness::new(SoftwareBackend::single(model.clone()))
            .replay(&multi_capture, &serve_config)
            .expect("software replay"),
        ServeHarness::new(deployment.serve_backend())
            .replay(&multi_capture, &serve_config)
            .expect("ecu replay"),
        ServeHarness::new(fleet.serve_backend())
            .replay(&multi_capture, &serve_config)
            .expect("fleet replay"),
    ];

    // 7b. The deterministic telemetry core (PR 9): the same three
    // backends replayed once more with a probe attached. The software
    // path splits the fused featurise -> pack -> infer pipeline (wall
    // durations through the audited WallClock gate, host timing by
    // contract); the batched ECU path profiles DMA windows and the
    // event-driven fleet transport traces per-frame gateway hops, both
    // on the virtual clock — platform facts, bit-stable across hosts.
    let traced_config = serve_config
        .clone()
        .with_telemetry(TelemetryConfig::default());
    let sw_telemetry = ServeHarness::new(SoftwareBackend::single(model.clone()))
        .replay(&multi_capture, &traced_config)
        .expect("traced software replay")
        .telemetry
        .expect("telemetry enabled");
    let ecu_telemetry = ServeHarness::new(deployment.serve_backend())
        .replay(&multi_capture, &traced_config)
        .expect("traced ecu replay")
        .telemetry
        .expect("telemetry enabled");
    let fleet_telemetry = ServeHarness::new(fleet.serve_backend())
        .replay(
            &multi_capture,
            &traced_config
                .clone()
                .with_transport(FleetTransport::EventDriven(NetConfig::default())),
        )
        .expect("traced fleet replay")
        .telemetry
        .expect("telemetry enabled");
    // (stage, source backend, stats) rows for the JSON section, one row
    // per taxonomy stage from the backend that exercises it.
    let telemetry_rows = [
        (
            "featurise",
            "software",
            sw_telemetry.stage_stats(Stage::Featurise),
        ),
        ("pack", "software", sw_telemetry.stage_stats(Stage::Pack)),
        ("infer", "software", sw_telemetry.stage_stats(Stage::Infer)),
        (
            "dma_window",
            "ecu",
            ecu_telemetry.stage_stats(Stage::DmaWindow),
        ),
        (
            "gateway_hop",
            "fleet",
            fleet_telemetry.stage_stats(Stage::GatewayHop),
        ),
        (
            "admission",
            "fleet",
            fleet_telemetry.stage_stats(Stage::Admission),
        ),
    ];

    // 8. Scale-out serving (PR 8): the saturated 1 Mb/s DoS capture
    // split into contiguous shards — parallel serving lanes, each
    // re-paced from the bus epoch — replayed on a bounded worker pool
    // with batched software dispatch. The merged `sustained_fps` is
    // aggregate capacity (total serviced over the busiest lane's busy
    // wall), so rows scale with shard count; batching amortises the
    // per-frame dispatch cost inside each lane. Each row reports the
    // best of five replays: the merged figure divides by the busiest
    // lane's wall — a worst-of-N statistic — so on a shared host a
    // single scheduler burst in any lane masks the capacity the lanes
    // actually reach, and multi-shard rows need several clean draws.
    let scale_capture = scenarios[0].generate_capture();
    let host_cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let scale_combos = [(1usize, 1usize), (1, 32), (2, 32), (4, 32), (8, 32)];
    let scale_rows: Vec<_> = scale_combos
        .iter()
        .map(|&(shards, batch)| {
            let config = scenarios[0]
                .replay_config()
                .with_shards(shards)
                .with_batch(batch)
                .with_workers(ShardWorkers::Auto);
            let r = (0..5)
                .map(|_| {
                    ServeHarness::replay_sharded(
                        || Ok(SoftwareBackend::single(model.clone())),
                        &scale_capture,
                        &config,
                    )
                    .expect("sharded software replay")
                })
                .max_by(|a, b| {
                    let fps = |r: &ServeReport| r.sustained_fps.unwrap_or(0.0);
                    fps(a).total_cmp(&fps(b))
                })
                .expect("five replay attempts");
            (
                shards,
                batch,
                config.workers.count(shards),
                r.offered_fps,
                r.sustained_fps.unwrap_or(0.0),
                r.dropped,
            )
        })
        .collect();

    // 9. Population serving (PR 10): the multi-tenant capacity curve.
    // Each tenant is one vehicle's capture stream at the 500 kb/s tenant
    // default; the curve records how many concurrent streams the
    // software backend pool sustains with zero FIFO drops through the
    // population layer, and one overload row squeezes 64 live streams
    // into a 16-slot pool so cross-tenant admission control engages.
    let tenant_population = |tenants: usize| -> Population {
        Population::with_tenants(
            (0..tenants)
                .map(|k| {
                    let capture = DatasetBuilder::new(TrafficConfig {
                        duration: SimTime::from_millis(200),
                        attack: if k % 2 == 0 { dos } else { None },
                        seed: 0x7E7A + k as u64,
                        ..TrafficConfig::default()
                    })
                    .build();
                    TenantStream::new(format!("vehicle-{k}"), capture)
                })
                .collect(),
        )
    };
    let population_rows: Vec<_> = [16usize, 32, 64]
        .iter()
        .map(|&tenants| {
            let report = tenant_population(tenants)
                .serve(
                    || Ok(SoftwareBackend::single(model.clone())),
                    &PopulationConfig::default()
                        .with_replay(ReplayConfig::default().with_batch(32)),
                )
                .expect("population replay");
            (
                tenants,
                report.offered_fps,
                report.sustained_fps.unwrap_or(0.0),
                report.dropped,
            )
        })
        .collect();
    let population_overload = tenant_population(64)
        .serve(
            || Ok(SoftwareBackend::single(model.clone())),
            &PopulationConfig::default()
                .with_replay(ReplayConfig::default().with_batch(32))
                .with_admission(TenantAdmission::ShedLowestValueTenant {
                    capacity: 16,
                    window: 128,
                }),
        )
        .expect("population overload replay");

    // The value-driven admission capstone: a 2-model board under the
    // 750 kb/s sequential overload must shed one model. Model 0 fires on
    // the capture but is mislabelled lowest static value; model 1 never
    // fires (its normal-class output bias dominates every achievable
    // score). The static policy sheds the firing model, the measured
    // policy reads the verdict stream and sheds the useless one.
    let firing = {
        let pipeline = canids_core::IdsPipeline::new(canids_core::PipelineConfig::dos().quick());
        let train_capture = pipeline.generate_capture();
        pipeline
            .train(&train_capture)
            .expect("quick DoS training")
            .int_mlp
    };
    let never_firing = {
        let mut m = untrained_model();
        let dominate = 1i64 << 40;
        m.output.bias_q[0] += dominate;
        for b in m.output.bias_q.iter_mut().skip(1) {
            *b -= dominate;
        }
        m
    };
    let duo = vec![
        DetectorBundle::new(AttackKind::Dos, firing),
        DetectorBundle::new(AttackKind::Fuzzy, never_firing),
    ];
    let duo_fleet = FleetPlan::build(&duo, &FleetConfig::new(vec![BoardSpec::zcu104("solo")]))
        .expect("2-model plan fits")
        .deploy(&duo, &CompileConfig::default())
        .expect("2-model fleet compiles");
    let overload_config = ReplayConfig::default()
        .with_bitrate(Bitrate::new(750_000))
        .with_policy(SchedPolicy::Sequential);
    let static_priorities = vec![1u32, 5u32];
    let static_shed = ServeHarness::new(duo_fleet.serve_backend())
        .replay(
            &multi_capture,
            &overload_config
                .clone()
                .with_admission(AdmissionPolicy::ShedLowestValue {
                    priorities: static_priorities.clone(),
                }),
        )
        .expect("static shed replay");
    let measured_shed = ServeHarness::new(duo_fleet.serve_backend())
        .replay(
            &multi_capture,
            &overload_config
                .clone()
                .with_admission(AdmissionPolicy::ShedLowestMeasuredValue {
                    window: 256,
                    priorities: static_priorities,
                }),
        )
        .expect("measured shed replay");
    let shed_victims = |r: &canids_core::ServeReport| -> Vec<usize> {
        let mut v: Vec<usize> = r
            .events
            .iter()
            .filter(|e| e.action == FleetAction::Shed)
            .map(|e| e.model)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let static_victims = shed_victims(&static_shed);
    let measured_victims = shed_victims(&measured_shed);

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"pr\": {pr},");
    let _ = writeln!(json, "  \"linear_forward_64x75x64\": {{");
    let _ = writeln!(json, "    \"median_us\": {linear_us:.3},");
    let _ = writeln!(json, "    \"fast_median_us\": {fast_us:.3},");
    let _ = writeln!(json, "    \"seed_baseline_us\": 120.0");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"accel_sim_sequential_fold\": {{");
    let _ = writeln!(json, "    \"us_per_frame\": {sim_us_per_frame:.3},");
    let _ = writeln!(json, "    \"pr3_baseline_us_per_frame\": 38.829");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"line_rate_harness\": [");
    for (i, (name, bitrate_bps, r)) in reports.iter().enumerate() {
        // Historical denominator: the last arrival, not the span.
        let offered_fps = if r.last_arrival > SimTime::ZERO {
            r.offered as f64 / r.last_arrival.as_secs_f64()
        } else {
            0.0
        };
        let sustained_fps = r.sustained_fps.unwrap_or(0.0);
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"scenario\": \"{name}\",");
        let _ = writeln!(json, "      \"bitrate_bps\": {bitrate_bps},");
        let _ = writeln!(json, "      \"offered_fps\": {offered_fps:.1},");
        let _ = writeln!(json, "      \"sustained_fps\": {sustained_fps:.1},");
        let _ = writeln!(
            json,
            "      \"p50_latency_us\": {:.3},",
            r.latency.p50.as_micros_f64()
        );
        let _ = writeln!(
            json,
            "      \"p99_latency_us\": {:.3},",
            r.latency.p99.as_micros_f64()
        );
        let _ = writeln!(json, "      \"dropped\": {},", r.dropped);
        let _ = writeln!(
            json,
            "      \"keeps_up\": {}",
            r.dropped == 0 && sustained_fps >= offered_fps
        );
        let _ = write!(json, "    }}");
        let _ = writeln!(json, "{}", if i + 1 < reports.len() { "," } else { "" });
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"multi_line_rate\": {{");
    let _ = writeln!(json, "    \"detectors\": {},", deployment.ips.len());
    let _ = writeln!(
        json,
        "    \"plan_utilization\": {:.4},",
        deployment.plan.utilization
    );
    let _ = writeln!(json, "    \"plan_headroom\": {},", deployment.plan.headroom);
    let _ = writeln!(json, "    \"bitrate_bps\": 1000000,");
    let _ = writeln!(json, "    \"policies\": [");
    for (i, r) in multi_reports.iter().enumerate() {
        // Historical denominator: the last arrival, not the span.
        let offered_fps = if r.last_arrival > SimTime::ZERO {
            r.offered as f64 / r.last_arrival.as_secs_f64()
        } else {
            0.0
        };
        let energy = r.energy.expect("the simulated ECU meters energy");
        let _ = writeln!(json, "      {{");
        let _ = writeln!(json, "        \"policy\": \"{}\",", r.sched);
        let _ = writeln!(json, "        \"offered_fps\": {offered_fps:.1},");
        let _ = writeln!(
            json,
            "        \"p50_latency_us\": {:.3},",
            r.latency.p50.as_micros_f64()
        );
        let _ = writeln!(
            json,
            "        \"p99_latency_us\": {:.3},",
            r.latency.p99.as_micros_f64()
        );
        let _ = writeln!(json, "        \"dropped\": {},", r.dropped);
        let _ = writeln!(
            json,
            "        \"energy_per_message_mj\": {:.4},",
            energy.energy_per_message_j * 1e3
        );
        let _ = writeln!(json, "        \"keeps_up\": {}", r.keeps_up());
        let _ = write!(json, "      }}");
        let _ = writeln!(
            json,
            "{}",
            if i + 1 < multi_reports.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "    ]");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"fleet_line_rate\": {{");
    let _ = writeln!(json, "    \"detectors\": {},", fleet.models());
    let _ = writeln!(json, "    \"boards\": {},", fleet.shards.len());
    let _ = writeln!(
        json,
        "    \"max_shard_utilization\": {:.4},",
        fleet_plan.max_utilization()
    );
    let _ = writeln!(json, "    \"replays\": [");
    for (i, (label, r)) in fleet_reports.iter().enumerate() {
        let _ = writeln!(json, "      {{");
        let _ = writeln!(json, "        \"scenario\": \"{label}\",");
        let _ = writeln!(json, "        \"admission\": \"{}\",", r.admission);
        let _ = writeln!(json, "        \"bitrate_bps\": {},", r.bitrate_bps);
        let _ = writeln!(json, "        \"offered_fps\": {:.1},", r.offered_fps);
        let _ = writeln!(
            json,
            "        \"p50_latency_us\": {:.3},",
            r.latency.p50.as_micros_f64()
        );
        let _ = writeln!(
            json,
            "        \"p99_latency_us\": {:.3},",
            r.latency.p99.as_micros_f64()
        );
        let _ = writeln!(json, "        \"dropped\": {},", r.dropped);
        let _ = writeln!(json, "        \"shed_events\": {},", r.shed_count());
        let _ = writeln!(
            json,
            "        \"fleet_power_w\": {:.3},",
            r.energy.expect("fleet boards meter energy").mean_power_w
        );
        let _ = writeln!(json, "        \"keeps_up\": {}", r.keeps_up());
        let _ = write!(json, "      }}");
        let _ = writeln!(
            json,
            "{}",
            if i + 1 < fleet_reports.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "    ]");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"net\": {{");
    let _ = writeln!(
        json,
        "    \"event_core_us_per_event\": {net_us_per_event:.4},"
    );
    let _ = writeln!(
        json,
        "    \"frames_per_sec_1m_2_segments\": {net_fps_2seg:.0},"
    );
    let _ = writeln!(
        json,
        "    \"frames_per_sec_1m_4_segments\": {net_fps_4seg:.0},"
    );
    let _ = writeln!(json, "    \"flood_drops\": {{");
    let _ = writeln!(json, "      \"drop_tail_16_dropped\": {drop_tail_dropped},");
    let _ = writeln!(json, "      \"pfc_16_dropped\": {pfc_dropped},");
    let _ = writeln!(json, "      \"pfc_16_paused\": {pfc_paused}");
    let _ = writeln!(json, "    }}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"serve\": {{");
    let _ = writeln!(json, "    \"backends\": [");
    for (i, r) in serve_rows.iter().enumerate() {
        let _ = writeln!(json, "      {{");
        let _ = writeln!(json, "        \"backend\": \"{}\",", r.backend);
        let _ = writeln!(json, "        \"sched\": \"{}\",", r.sched);
        let _ = writeln!(json, "        \"admission\": \"{}\",", r.admission);
        let _ = writeln!(json, "        \"offered_fps\": {:.1},", r.offered_fps);
        let _ = writeln!(
            json,
            "        \"p50_latency_us\": {:.3},",
            r.latency.p50.as_micros_f64()
        );
        let _ = writeln!(
            json,
            "        \"p99_latency_us\": {:.3},",
            r.latency.p99.as_micros_f64()
        );
        let _ = writeln!(json, "        \"dropped\": {},", r.dropped);
        let _ = writeln!(json, "        \"keeps_up\": {}", r.keeps_up());
        let _ = write!(json, "      }}");
        let _ = writeln!(json, "{}", if i + 1 < serve_rows.len() { "," } else { "" });
    }
    let _ = writeln!(json, "    ],");
    let _ = writeln!(json, "    \"scaleout\": {{");
    let _ = writeln!(json, "      \"bitrate_bps\": 1000000,");
    let _ = writeln!(json, "      \"host_cores\": {host_cores},");
    let _ = writeln!(json, "      \"rows\": [");
    for (i, (shards, batch, workers, offered, sustained, dropped)) in scale_rows.iter().enumerate()
    {
        let _ = writeln!(json, "        {{");
        let _ = writeln!(json, "          \"shards\": {shards},");
        let _ = writeln!(json, "          \"batch\": {batch},");
        let _ = writeln!(json, "          \"workers\": {workers},");
        let _ = writeln!(json, "          \"offered_fps\": {offered:.1},");
        let _ = writeln!(json, "          \"sustained_fps\": {sustained:.1},");
        let _ = writeln!(json, "          \"dropped\": {dropped}");
        let _ = write!(json, "        }}");
        let _ = writeln!(json, "{}", if i + 1 < scale_rows.len() { "," } else { "" });
    }
    let _ = writeln!(json, "      ]");
    let _ = writeln!(json, "    }},");
    let _ = writeln!(json, "    \"telemetry\": {{");
    let _ = writeln!(json, "      \"stages\": [");
    for (i, (stage, source, s)) in telemetry_rows.iter().enumerate() {
        let _ = writeln!(json, "        {{");
        let _ = writeln!(json, "          \"stage\": \"{stage}\",");
        let _ = writeln!(json, "          \"source\": \"{source}\",");
        let _ = writeln!(json, "          \"count\": {},", s.count);
        let _ = writeln!(json, "          \"mean_ns\": {:.1},", s.mean_ns);
        let _ = writeln!(json, "          \"max_ns\": {}", s.max_ns);
        let _ = write!(json, "        }}");
        let _ = writeln!(
            json,
            "{}",
            if i + 1 < telemetry_rows.len() {
                ","
            } else {
                ""
            }
        );
    }
    let _ = writeln!(json, "      ],");
    let _ = writeln!(
        json,
        "      \"fleet_spans\": {},",
        fleet_telemetry.spans.len()
    );
    let _ = writeln!(
        json,
        "      \"fleet_metrics_fingerprint\": \"{}\"",
        fleet_telemetry.metrics.fingerprint()
    );
    let _ = writeln!(json, "    }},");
    let _ = writeln!(json, "    \"population\": {{");
    let _ = writeln!(json, "      \"tenant_bitrate_bps\": 500000,");
    let _ = writeln!(json, "      \"capacity_curve\": [");
    for (i, (tenants, offered, sustained, dropped)) in population_rows.iter().enumerate() {
        let _ = writeln!(json, "        {{");
        let _ = writeln!(json, "          \"tenants\": {tenants},");
        let _ = writeln!(json, "          \"offered_fps\": {offered:.1},");
        let _ = writeln!(json, "          \"sustained_fps\": {sustained:.1},");
        let _ = writeln!(json, "          \"dropped\": {dropped},");
        let _ = writeln!(json, "          \"zero_drop\": {}", *dropped == 0);
        let _ = write!(json, "        }}");
        let _ = writeln!(
            json,
            "{}",
            if i + 1 < population_rows.len() {
                ","
            } else {
                ""
            }
        );
    }
    let _ = writeln!(json, "      ],");
    let _ = writeln!(json, "      \"overload\": {{");
    let _ = writeln!(json, "        \"tenants\": 64,");
    let _ = writeln!(json, "        \"capacity\": 16,");
    let _ = writeln!(
        json,
        "        \"shed_events\": {},",
        population_overload.shed_count()
    );
    let _ = writeln!(
        json,
        "        \"readmits\": {},",
        population_overload.readmit_count()
    );
    let _ = writeln!(
        json,
        "        \"shed_frames\": {},",
        population_overload.shed_frames
    );
    let _ = writeln!(json, "        \"dropped\": {}", population_overload.dropped);
    let _ = writeln!(json, "      }}");
    let _ = writeln!(json, "    }},");
    let _ = writeln!(json, "    \"value_admission\": {{");
    let _ = writeln!(json, "      \"bitrate_bps\": 750000,");
    let _ = writeln!(json, "      \"never_firing_model\": 1,");
    let _ = writeln!(
        json,
        "      \"static_shed_victims\": [{}],",
        static_victims
            .iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(
        json,
        "      \"measured_shed_victims\": [{}],",
        measured_victims
            .iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(json, "      \"static_dropped\": {},", static_shed.dropped);
    let _ = writeln!(
        json,
        "      \"measured_dropped\": {},",
        measured_shed.dropped
    );
    let _ = writeln!(
        json,
        "      \"static_confirmed_positives\": {},",
        static_shed
            .per_model
            .iter()
            .map(|m| m.confirmed_positives)
            .sum::<usize>()
    );
    let _ = writeln!(
        json,
        "      \"measured_confirmed_positives\": {}",
        measured_shed
            .per_model
            .iter()
            .map(|m| m.confirmed_positives)
            .sum::<usize>()
    );
    let _ = writeln!(json, "    }}");
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");

    std::fs::write(&out_path, &json).expect("write perf snapshot");
    println!("{json}");
    eprintln!("[bench_summary] wrote {out_path} (sink {sink})");
}
