//! Regenerates **Table I**: accuracy-metric comparison of the quantised
//! FPGA accelerators against the IDSs in reported literature.
//!
//! ```sh
//! cargo run --release -p canids-bench --bin table1_accuracy
//! ```

use canids_bench::{harness_dos, harness_fuzzy};
use canids_core::prelude::*;

fn section(
    table: &mut Table,
    attack: &str,
    literature: &[AccuracyRow],
    ours: &ConfusionMatrix,
    paper_ours: &AccuracyRow,
    mth_measured: Option<&ConfusionMatrix>,
) {
    for row in literature {
        table.push_row(&[
            attack.to_owned(),
            row.model.to_owned(),
            pct(row.precision),
            pct(row.recall),
            pct(row.f1),
            pct_opt(row.fnr),
        ]);
    }
    if let Some(cm) = mth_measured {
        let (p, r, f1, fnr) = cm.table_row();
        table.push_row(&[
            attack.to_owned(),
            "MTH-style tree+kNN (measured)".to_owned(),
            pct(p),
            pct(r),
            pct(f1),
            pct(fnr),
        ]);
    }
    let (p, r, f1, fnr) = ours.table_row();
    table.push_row(&[
        attack.to_owned(),
        "4-bit-QMLP (ours, measured)".to_owned(),
        pct(p),
        pct(r),
        pct(f1),
        pct(fnr),
    ]);
    table.push_row(&[
        attack.to_owned(),
        paper_ours.model.to_owned(),
        pct(paper_ours.precision),
        pct(paper_ours.recall),
        pct(paper_ours.f1),
        pct_opt(paper_ours.fnr),
    ]);
}

fn measured_mth(config: &PipelineConfig) -> ConfusionMatrix {
    let pipeline = IdsPipeline::new(config.clone());
    let capture = pipeline.generate_capture();
    let (train, test) = train_test_split(&capture, SplitConfig::default());
    let enc = IdPayloadBytes;
    let (xs, ys) = train.to_xy(&enc);
    let model = MthIds::fit(&xs, &ys);
    let (txs, tys) = test.to_xy(&enc);
    let mut cm = ConfusionMatrix::new();
    for (x, &y) in txs.iter().zip(&tys) {
        cm.record(model.predict(x) != 0, y != 0);
    }
    cm
}

fn main() -> Result<(), CoreError> {
    eprintln!("[table1] training DoS detector ...");
    let dos = IdsPipeline::new(harness_dos()).run()?;
    eprintln!("[table1] training Fuzzy detector ...");
    let fuzzy = IdsPipeline::new(harness_fuzzy()).run()?;
    eprintln!("[table1] training measured MTH-style baselines ...");
    let mth_dos = measured_mth(&harness_dos());
    let mth_fuzzy = measured_mth(&harness_fuzzy());

    let (paper_dos, paper_fuzzy) = canids_baselines::literature::table1_qmlp_paper();
    let mut table = Table::new(
        "Table I — accuracy metric comparison (%)",
        &["Attack", "Model", "Precision", "Recall", "F1", "FNR"],
    );
    section(
        &mut table,
        "DoS",
        &table1_dos(),
        &dos.detector.test_cm,
        &paper_dos,
        Some(&mth_dos),
    );
    section(
        &mut table,
        "Fuzzy",
        &table1_fuzzy(),
        &fuzzy.detector.test_cm,
        &paper_fuzzy,
        Some(&mth_fuzzy),
    );
    println!("{table}");
    println!(
        "(literature rows quoted from the paper; 'measured' rows evaluated on the\n synthetic Car-Hacking-style captures; paper rows are the reproduction target)"
    );
    Ok(())
}
