//! Regenerates the in-text design-space exploration: "4-bit uniform
//! quantisation achieved best performance in both DoS and Fuzzying
//! attacks, and hence was chosen for deployment".
//!
//! ```sh
//! cargo run --release -p canids-bench --bin dse_bitwidth
//! ```

use canids_core::dse::sweep_bitwidths;
use canids_core::prelude::*;

fn run_sweep(name: &str, config: PipelineConfig) -> Result<DseReport, CoreError> {
    eprintln!("[dse] sweeping {name} ...");
    let capture = IdsPipeline::new(config.clone()).generate_capture();
    let report = sweep_bitwidths(&config, &capture, &[1, 2, 3, 4, 6, 8])?;
    let mut table = Table::new(
        format!("E6 — DSE over quantisation width ({name})"),
        &[
            "bits",
            "Precision",
            "Recall",
            "F1",
            "FNR",
            "LUT",
            "util %",
            "merit",
        ],
    );
    for p in &report.points {
        let (prec, rec, f1, fnr) = p.cm.table_row();
        table.push_row(&[
            p.bits.to_string(),
            pct(prec),
            pct(rec),
            pct(f1),
            pct(fnr),
            p.luts.to_string(),
            format!("{:.2}", p.utilization * 100.0),
            format!("{:.3}", p.merit()),
        ]);
    }
    println!("{table}");
    println!(
        "selected for {name}: {}-bit (paper deploys 4-bit)\n",
        report.selected_point().bits
    );
    Ok(report)
}

fn main() -> Result<(), CoreError> {
    let quick = |c: PipelineConfig| PipelineConfig {
        capture_duration: SimTime::from_secs(6),
        ..c
    };
    let dos = run_sweep("DoS", quick(PipelineConfig::dos()))?;
    let fuzzy = run_sweep("Fuzzy", quick(PipelineConfig::fuzzy()))?;

    // The paper's criterion: the width that "achieved best performance in
    // both DoS and Fuzzying attacks" — the cheapest width whose F1 is
    // within a hair of the maximum on *both* sweeps.
    let joint = dos
        .points
        .iter()
        .zip(&fuzzy.points)
        .filter(|(d, f)| {
            let best_d = dos.points.iter().map(|p| p.cm.f1()).fold(0.0, f64::max);
            let best_f = fuzzy.points.iter().map(|p| p.cm.f1()).fold(0.0, f64::max);
            d.cm.f1() >= best_d - 1e-4 && f.cm.f1() >= best_f - 1e-4
        })
        .map(|(d, _)| d.bits)
        .min();
    println!(
        "joint selection (best in BOTH attacks, cheapest): {}-bit — paper: 4-bit",
        joint.map_or_else(|| "?".to_owned(), |b| b.to_string())
    );
    Ok(())
}
