//! Regenerates the in-text resource result: "the single model deployed
//! consumes less than 4% of resources on the device, allowing multiple
//! models to be executed simultaneously".
//!
//! ```sh
//! cargo run --release -p canids-bench --bin text_resources
//! ```

use canids_bench::untrained_ip;
use canids_core::prelude::*;

fn main() -> Result<(), CoreError> {
    let ip = untrained_ip();
    let usage = ip.resources();
    let util = ip.utilization(Device::ZCU104);

    let mut table = Table::new(
        "E5 — resource utilisation on the ZCU104 (XCZU7EV)",
        &["Resource", "Used", "Available", "Share"],
    );
    table.push_row(&[
        "LUT".to_owned(),
        usage.lut.to_string(),
        Device::ZCU104.luts.to_string(),
        format!("{:.2}%", util.lut * 100.0),
    ]);
    table.push_row(&[
        "FF".to_owned(),
        usage.ff.to_string(),
        Device::ZCU104.ffs.to_string(),
        format!("{:.2}%", util.ff * 100.0),
    ]);
    table.push_row(&[
        "BRAM36".to_owned(),
        usage.bram36.to_string(),
        Device::ZCU104.bram36.to_string(),
        format!("{:.2}%", util.bram36 * 100.0),
    ]);
    table.push_row(&[
        "DSP".to_owned(),
        usage.dsp.to_string(),
        Device::ZCU104.dsps.to_string(),
        format!("{:.2}%", util.dsp * 100.0),
    ]);
    println!("{table}");

    println!(
        "peak share {:.2}% (paper: <4%)",
        util.max_fraction() * 100.0
    );
    println!(
        "device headroom: {} copies of this IP would fit",
        Device::ZCU104.fit_count(usage)
    );

    // Folding ablation: resource/latency trade-off around the deployment point.
    let mut ablation = Table::new(
        "Folding ablation (paper topology, 200 MHz)",
        &["Goal", "LUT", "II cycles", "Latency us", "Peak fps"],
    );
    use canids_dataflow::folding::FoldingGoal;
    for (name, goal) in [
        ("min-resource", FoldingGoal::MinResource),
        (
            "100k fps",
            FoldingGoal::TargetFps {
                fps: 100_000.0,
                clock_hz: 200_000_000,
            },
        ),
        (
            "1M fps (deployed)",
            FoldingGoal::TargetFps {
                fps: 1_000_000.0,
                clock_hz: 200_000_000,
            },
        ),
        ("max-parallel", FoldingGoal::MaxParallel),
    ] {
        let ip = AcceleratorIp::compile(
            &canids_bench::untrained_model(),
            CompileConfig {
                goal,
                ..CompileConfig::default()
            },
        )?;
        ablation.push_row(&[
            name.to_owned(),
            ip.resources().lut.to_string(),
            ip.initiation_interval().to_string(),
            format!("{:.2}", ip.latency_secs() * 1e6),
            format!("{:.0}", ip.peak_throughput_fps()),
        ]);
    }
    println!("{ablation}");
    Ok(())
}
