//! Ablation: where does the 0.12 ms go, and what would alternative
//! integrations buy? Compares the paper's per-message PYNQ/Linux path
//! against a bare-metal driver and DMA batch mode, plus the per-message
//! breakdown.
//!
//! ```sh
//! cargo run --release -p canids-bench --bin ablation_driver
//! ```

use canids_bench::untrained_ip;
use canids_core::prelude::*;
use canids_soc::dma::{run_batch, DmaConfig};

fn main() -> Result<(), CoreError> {
    let ip = untrained_ip();
    let bits: Vec<f32> = (0..75).map(|i| f32::from(i % 3 == 0)).collect();

    // 1. Per-message breakdown under Linux.
    let mut linux = Zcu104Board::new(BoardConfig::default());
    let li = linux.attach_accelerator(ip.clone())?;
    let rec = linux.infer(li, &bits)?;
    let mut breakdown = Table::new(
        "Per-message latency breakdown (Linux/PYNQ path)",
        &["Component", "Time", "Share"],
    );
    let total = rec.latency().as_secs_f64();
    let rx = linux.cpu().rx_path();
    for (name, t) in [
        ("IRQ entry + frame copy (RX path)", rx),
        ("runtime dispatch", rec.breakdown.dispatch),
        ("MMIO register traffic", rec.breakdown.mmio),
        ("accelerator compute (wait)", rec.breakdown.compute_wait),
    ] {
        breakdown.push_row(&[
            name.to_owned(),
            format!("{t}"),
            format!(
                "{:.1}%",
                100.0 * t.as_secs_f64() / (total + rx.as_secs_f64())
            ),
        ]);
    }
    println!("{breakdown}");

    // 2. Integration alternatives.
    let mut alt = Table::new(
        "Integration ablation",
        &["Integration", "Per-message latency", "First-verdict delay"],
    );
    alt.push_row(&[
        "per-message, Linux/PYNQ (paper)".to_owned(),
        format!("{}", rec.latency() + rx),
        format!("{}", rec.latency() + rx),
    ]);

    let mut bm = Zcu104Board::new(BoardConfig {
        cpu: CpuModel::zynqmp_a53_baremetal(),
        ..BoardConfig::default()
    });
    let bi = bm.attach_accelerator(ip.clone())?;
    let bm_rec = bm.infer(bi, &bits)?;
    let bm_rx = bm.cpu().rx_path();
    alt.push_row(&[
        "per-message, bare-metal (AUTOSAR-style)".to_owned(),
        format!("{}", bm_rec.latency() + bm_rx),
        format!("{}", bm_rec.latency() + bm_rx),
    ]);

    for n in [64usize, 256] {
        let batch: Vec<Vec<f32>> = (0..n).map(|_| bits.clone()).collect();
        let report = run_batch(
            &ip,
            &CpuModel::zynqmp_a53_linux(),
            DmaConfig::default(),
            &batch,
        )?;
        alt.push_row(&[
            format!("DMA batch x{n}, Linux"),
            format!("{}", report.per_frame),
            format!("{}", report.total),
        ]);
    }
    println!("{alt}");
    println!(
        "the paper's per-message design trades amortised throughput for the lowest\n first-verdict delay — the quantity that matters for intrusion response"
    );
    Ok(())
}
