//! Regenerates the in-text power/energy results: 2.09 W board power,
//! 0.25 mJ per inference, and the 9.12 J A6000 GPU reference.
//!
//! ```sh
//! cargo run --release -p canids-bench --bin text_power_energy
//! ```

use canids_baselines::platform::Platform;
use canids_bench::harness_dos;
use canids_core::prelude::*;

fn main() -> Result<(), CoreError> {
    eprintln!("[power] running pipeline ...");
    let pipeline = IdsPipeline::new(harness_dos());
    let capture = pipeline.generate_capture();
    let detector = pipeline.train(&capture)?;
    let ip = pipeline.compile(&detector.int_mlp)?;

    // The paper measures power *while performing inference*: drive the
    // ECU at 1 Mb/s line rate (back-to-back 8-byte frames, ~120 µs each)
    // so the service loop saturates, then read the rails.
    let mut board = Zcu104Board::new(BoardConfig::default());
    let idx = board.attach_accelerator(ip.clone())?;
    let mut ecu = IdsEcu::new(board, vec![idx], EcuConfig::default());
    let line_period = SimTime::from_micros(120);
    let frames: Vec<(SimTime, CanFrame)> = detector
        .test_set
        .iter()
        .take(3_000)
        .enumerate()
        .map(|(i, r)| (line_period.mul_u64(i as u64), r.frame))
        .collect();
    let encoder = IdBitsPayloadBits;
    let ecu_report = ecu.process_capture(&frames, &|f: &CanFrame| encoder.encode(f))?;

    let mut table = Table::new(
        "E4 — power and energy per inference",
        &["Quantity", "Measured", "Paper"],
    );
    table.push_row(&[
        "board power during inference".to_owned(),
        format!("{:.2} W", ecu_report.mean_power_w),
        "2.09 W".to_owned(),
    ]);
    table.push_row(&[
        "energy per message".to_owned(),
        format!("{:.3} mJ", ecu_report.energy_per_message_j * 1e3),
        "0.25 mJ".to_owned(),
    ]);
    let pl = ip.power(0.125);
    table.push_row(&[
        "PL (accelerator) share".to_owned(),
        format!(
            "{:.2} W ({:.0} mW dynamic)",
            pl.total_w(),
            pl.dynamic_w * 1e3
        ),
        "-".to_owned(),
    ]);

    // GPU reference: 8-bit QMLP on an A6000.
    let a6000 = Platform::rtx_a6000();
    let model8 = QuantMlp::new(MlpConfig::gpu_8bit()).unwrap();
    let gpu_energy = a6000.invocation_energy_j(model8.macs() as u64, SimTime::ZERO);
    table.push_row(&[
        "8-bit QMLP on RTX A6000".to_owned(),
        format!("{gpu_energy:.2} J"),
        "9.12 J".to_owned(),
    ]);
    println!("{table}");

    let ratio = gpu_energy / ecu_report.energy_per_message_j;
    println!("GPU/FPGA energy ratio: {ratio:.0}x (paper: 9.12 J / 0.25 mJ = ~36,000x)");
    Ok(())
}
