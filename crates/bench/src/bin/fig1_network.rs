//! Regenerates **Figure 1** as a simulation: the CAN network with
//! IDS-capable ECUs scanning all messages, including high- and low-speed
//! segments joined by a gateway and a malicious node on the high-speed
//! side.
//!
//! ```sh
//! cargo run --release -p canids-bench --bin fig1_network
//! ```

use canids_can::node::CanController;
use canids_core::prelude::*;

fn segment(
    name: &str,
    bitrate: Bitrate,
    nodes: usize,
    attack: Option<AttackProfile>,
    seed: u64,
) -> (String, Vec<BusEvent>) {
    let mut bus = Bus::new(BusConfig {
        bitrate,
        ..BusConfig::default()
    });
    let horizon = SimTime::from_secs(2);
    for src in VehicleModel::sonata().into_sources(nodes, seed) {
        let node = bus.add_node(CanController::default());
        bus.attach_source(node, Box::new(src.with_horizon(horizon)));
    }
    if let Some(profile) = attack {
        let node = bus.add_node(CanController::default());
        bus.attach_source(node, Box::new(profile.into_source(seed ^ 0xBAD, horizon)));
    }
    let _ids = bus.add_node(CanController::default());
    bus.run_until(horizon);
    let events = bus.take_events();
    let line = format!(
        "{name:<14} {:>8} frames  {:>6.1}% utilised  {} nodes",
        events.len(),
        bus.stats().utilization(bus.now()) * 100.0,
        bus.node_count(),
    );
    (line, events)
}

fn main() -> Result<(), CoreError> {
    println!("Fig. 1 — vehicle network with IDS-capable ECUs\n");

    let dos = AttackProfile::dos().with_schedule(BurstSchedule::Periodic {
        initial_delay: SimTime::from_millis(500),
        on: SimTime::from_millis(500),
        off: SimTime::from_millis(500),
    });
    let (hs_line, hs_events) =
        segment("high-speed CAN", Bitrate::HIGH_SPEED_500K, 4, Some(dos), 41);
    let (ls_line, _) = segment("low-speed CAN", Bitrate::LOW_SPEED_125K, 3, None, 42);
    println!("{hs_line}");
    println!("{ls_line}");

    // The IDS ECU on the high-speed segment scans every message.
    eprintln!("[fig1] training the IDS ECU's DoS model ...");
    let pipeline = IdsPipeline::new(PipelineConfig::dos().quick());
    let detector = pipeline.train(&pipeline.generate_capture())?;
    let ip = pipeline.compile(&detector.int_mlp)?;
    let mut board = Zcu104Board::new(BoardConfig::default());
    let idx = board.attach_accelerator(ip)?;
    let mut ecu = IdsEcu::new(board, vec![idx], EcuConfig::default());
    let frames: Vec<(SimTime, CanFrame)> = hs_events.iter().map(|e| (e.time, e.frame)).collect();
    let encoder = IdBitsPayloadBits;
    let report = ecu.process_capture(&frames, &|f: &CanFrame| encoder.encode(f))?;

    let flagged = report.detections.iter().filter(|d| d.flagged).count();
    let dos_frames = hs_events.iter().filter(|e| e.frame.id().raw() == 0).count();
    println!("\nIDS ECU (high-speed segment):");
    println!("  scanned  : {} frames", report.detections.len());
    println!("  flagged  : {flagged} (ground truth: {dos_frames} DoS frames)");
    println!(
        "  latency  : {:.3} ms mean, {:.3} ms max, {} dropped",
        report.mean_latency.as_millis_f64(),
        report.max_latency.as_millis_f64(),
        report.dropped
    );
    println!("  power    : {:.2} W", report.mean_power_w);
    Ok(())
}
