//! Criterion bench for the DSE engine: export, folding and full IP
//! compilation of the paper topology.

use canids_bench::untrained_model;
use canids_dataflow::folding::{auto_fold, FoldingGoal};
use canids_dataflow::graph::DataflowGraph;
use canids_dataflow::ip::{AcceleratorIp, CompileConfig};
use canids_qnn::mlp::{MlpConfig, QuantMlp};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_dse(c: &mut Criterion) {
    let mlp = QuantMlp::new(MlpConfig::paper_4bit()).unwrap();
    let model = untrained_model();
    let graph = DataflowGraph::from_integer_mlp(&model).unwrap();

    let mut group = c.benchmark_group("dse_compile");
    group.bench_function("integer_export", |b| b.iter(|| mlp.export().unwrap()));
    group.bench_function("auto_fold_target_fps", |b| {
        b.iter(|| {
            auto_fold(
                black_box(&graph),
                FoldingGoal::TargetFps {
                    fps: 100_000.0,
                    clock_hz: 200_000_000,
                },
            )
            .unwrap()
        })
    });
    group.bench_function("full_ip_compile", |b| {
        b.iter(|| AcceleratorIp::compile(black_box(&model), CompileConfig::default()).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_dse
}
criterion_main!(benches);
