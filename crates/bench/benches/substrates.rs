//! Criterion micro-benches of the substrate kernels: CRC-15, bit
//! stuffing, QAT matmul and the decision-tree baseline.

use canids_baselines::mth::DecisionTree;
use canids_can::bits::{destuff, stuff};
use canids_can::crc::crc15;
use canids_qnn::tensor::{linear_forward, Matrix};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_substrates(c: &mut Criterion) {
    let bits: Vec<bool> = (0..98).map(|i| (i * 7) % 3 == 0).collect();
    let stuffed = stuff(&bits);

    let mut group = c.benchmark_group("substrates");
    group.bench_function("crc15_98bits", |b| b.iter(|| crc15(black_box(&bits))));
    group.bench_function("stuff_98bits", |b| b.iter(|| stuff(black_box(&bits))));
    group.bench_function("destuff", |b| {
        b.iter(|| destuff(black_box(&stuffed)).unwrap())
    });

    // The QAT hot loop: batch-64 forward through the first paper layer.
    let x = Matrix::zeros(64, 75);
    let w = Matrix::zeros(64, 75);
    let bias = vec![0.0f32; 64];
    group.bench_function("linear_forward_64x75x64", |b| {
        b.iter(|| linear_forward(black_box(&x), black_box(&w), black_box(&bias)))
    });

    // Decision-tree predict (the MTH-IDS baseline's hot path).
    let xs: Vec<Vec<f32>> = (0..512)
        .map(|i| vec![(i % 7) as f32, (i % 5) as f32, (i % 3) as f32])
        .collect();
    let ys: Vec<usize> = (0..512).map(|i| usize::from(i % 7 > 3)).collect();
    let tree = DecisionTree::fit(&xs, &ys, 8);
    group.bench_function("decision_tree_predict", |b| {
        b.iter(|| tree.predict(black_box(&[3.0, 2.0, 1.0])))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_substrates
}
criterion_main!(benches);
