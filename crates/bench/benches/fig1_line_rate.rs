//! Criterion bench for the Fig. 1 / throughput substrate: frame encoding,
//! saturated-bus simulation speed, and the streaming (frame-at-a-time)
//! serving path the line-rate harness drives.

use canids_bench::untrained_model;
use canids_can::bits::encode_frame;
use canids_can::bus::{Bus, BusConfig};
use canids_can::frame::{CanFrame, CanId};
use canids_can::node::CanController;
use canids_can::time::SimTime;
use canids_can::timing::{max_frame_rate, Bitrate};
use canids_core::stream::StreamingEvaluator;
use canids_dataset::attacks::{AttackProfile, BurstSchedule};
use canids_dataset::generator::{DatasetBuilder, TrafficConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig1(c: &mut Criterion) {
    let frame = CanFrame::new(CanId::standard(0x2C0).unwrap(), &[0xA5; 8]).unwrap();

    let mut group = c.benchmark_group("fig1_line_rate");
    group.bench_function("encode_frame", |b| {
        b.iter(|| encode_frame(black_box(&frame)))
    });
    group.bench_function("analytic_line_rate", |b| {
        b.iter(|| max_frame_rate(black_box(Bitrate::HIGH_SPEED_1M), 8).unwrap())
    });
    group.bench_function("saturated_bus_10ms", |b| {
        b.iter(|| {
            let mut bus = Bus::new(BusConfig {
                bitrate: Bitrate::HIGH_SPEED_1M,
                ..BusConfig::default()
            });
            let tx = bus.add_node(CanController::default());
            let frames: Vec<(SimTime, CanFrame)> =
                (0..200).map(|_| (SimTime::ZERO, frame)).collect();
            bus.attach_source(tx, Box::new(frames.into_iter()));
            bus.run_until(SimTime::from_millis(10));
            black_box(bus.stats().frames_delivered)
        })
    });

    // The per-frame cost the line-rate claim rests on: incremental
    // featurisation + integer inference + online accounting. At 1 Mb/s
    // this must stay well under the ~120 us frame slot.
    let capture = DatasetBuilder::new(TrafficConfig {
        duration: SimTime::from_millis(200),
        attack: Some(AttackProfile::dos().with_schedule(BurstSchedule::Continuous)),
        seed: 0xF1A7,
        ..TrafficConfig::default()
    })
    .build();
    let mut eval = StreamingEvaluator::new(untrained_model());
    let records = capture.records();
    let mut i = 0usize;
    group.bench_function("streaming_eval_per_frame", |b| {
        b.iter(|| {
            let v = eval.push(black_box(&records[i]));
            i = (i + 1) % records.len();
            black_box(v.class)
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_fig1
}
criterion_main!(benches);
