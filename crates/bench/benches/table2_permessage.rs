//! Criterion bench for Table II's engine: the full simulated per-message
//! driver path (pack → MMIO → poll → read) on the ZCU104 board model.

use canids_bench::untrained_ip;
use canids_soc::board::{BoardConfig, Zcu104Board};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_table2(c: &mut Criterion) {
    let mut board = Zcu104Board::new(BoardConfig::default());
    let idx = board.attach_accelerator(untrained_ip()).unwrap();
    let bits: Vec<f32> = (0..75).map(|i| f32::from(i % 2 == 0)).collect();

    let mut group = c.benchmark_group("table2");
    group.bench_function("driver_infer_call", |b| {
        b.iter(|| board.infer(idx, black_box(&bits)).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_table2
}
criterion_main!(benches);
