//! Criterion bench for Table I's engine: per-frame inference through the
//! integer model and the cycle-accurate accelerator simulator.

use canids_bench::{untrained_ip, untrained_model};
use canids_can::frame::{CanFrame, CanId};
use canids_dataset::features::{FrameEncoder, IdBitsPayloadBits};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let model = untrained_model();
    let ip = untrained_ip();
    let sim = ip.simulator();
    let encoder = IdBitsPayloadBits;
    let frame = CanFrame::new(
        CanId::standard(0x316).unwrap(),
        &[0x05, 0x21, 0x68, 0x09, 0x21, 0x21, 0x00, 0x6F],
    )
    .unwrap();
    let bits = encoder.encode(&frame);
    let x: Vec<u32> = bits.iter().map(|&b| u32::from(b >= 0.5)).collect();

    let mut group = c.benchmark_group("table1");
    group.bench_function("feature_encode", |b| {
        b.iter(|| encoder.encode(black_box(&frame)))
    });
    group.bench_function("integer_mlp_infer", |b| {
        b.iter(|| model.infer(black_box(&x)))
    });
    group.bench_function("cycle_accurate_sim_frame", |b| {
        b.iter(|| sim.run(black_box(std::slice::from_ref(&x))))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_table1
}
criterion_main!(benches);
