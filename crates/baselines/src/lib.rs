//! Literature-baseline reimplementations and platform models.
//!
//! The paper compares its 4-bit QMLP against six published CAN IDSs
//! (Table I accuracy, Table II latency). This crate provides:
//!
//! * [`literature`] — the published rows, verbatim (the paper compares
//!   against reported numbers, and so do we),
//! * [`models`] — architecture-level reimplementations of the neural
//!   baselines (DCNN, GRU, MLIDS-LSTM, TCAN, NovelADS) built on the
//!   [`nn`] kernels: real forward passes and exact MAC counts,
//! * [`platform`] — analytic Jetson/GPU/Raspberry-Pi execution models
//!   (spec-sheet compute rates and power, calibrated dispatch),
//! * [`workload`] — the model↔platform pairings that regenerate the
//!   Table II rows,
//! * [`mth`] — a trainable decision-tree + kNN detector (MTH-IDS style)
//!   that produces *measured* baseline rows on our synthetic captures.
//!
//! # Example
//!
//! ```
//! use canids_baselines::prelude::*;
//!
//! // The modelled Table II reproduces the published ordering among the
//! // per-message IDSs (block models amortise their invocation cost but
//! // cannot give a verdict before the whole block arrives).
//! let rows = table2_workloads();
//! let mth = rows.iter().find(|w| w.model.starts_with("MTH")).unwrap();
//! for row in rows.iter().filter(|w| w.frames_per_invocation == 1) {
//!     assert!(mth.latency_per_frame() <= row.latency_per_frame());
//! }
//! ```

pub mod literature;
pub mod models;
pub mod mth;
pub mod nn;
pub mod platform;
pub mod workload;

pub use literature::{
    paper_headlines, table1_dos, table1_fuzzy, table2_rows, AccuracyRow, LatencyRow,
};
pub use models::{Dcnn, GruIds, MlidsLstm, NovelAds, TcanIds};
pub use mth::{DecisionTree, Knn, MthIds};
pub use platform::Platform;
pub use workload::{table2_workloads, BaselineWorkload};

/// Convenience re-exports for downstream crates and examples.
pub mod prelude {
    pub use crate::literature::{
        paper_headlines, table1_dos, table1_fuzzy, table2_qmlp_paper, table2_rows, AccuracyRow,
        LatencyRow,
    };
    pub use crate::models::{Dcnn, GruIds, MlidsLstm, NovelAds, TcanIds};
    pub use crate::mth::{DecisionTree, Knn, MthIds};
    pub use crate::platform::Platform;
    pub use crate::workload::{table2_workloads, BaselineWorkload};
}
