//! Table II workloads: each literature IDS bound to its platform model,
//! with the per-invocation software overhead calibrated against the
//! published row (the overhead absorbs each paper's preprocessing
//! pipeline, which is not derivable from the architecture alone).

use canids_can::time::SimTime;

#[cfg(test)]
use crate::literature;
use crate::models::{Dcnn, GruIds, MlidsLstm, NovelAds, TcanIds};
use crate::platform::Platform;

/// A model+platform pairing with its calibrated software overhead.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineWorkload {
    /// Model name (matches the Table II row).
    pub model: &'static str,
    /// MACs per invocation.
    pub macs: u64,
    /// CAN frames covered per invocation.
    pub frames_per_invocation: u32,
    /// The execution platform.
    pub platform: Platform,
    /// Calibrated per-invocation software overhead (preprocessing,
    /// framework glue) absorbing the published measurement residual.
    pub sw_overhead: SimTime,
}

impl BaselineWorkload {
    /// Modelled latency per invocation.
    pub fn latency_per_invocation(&self) -> SimTime {
        self.platform
            .invocation_latency(self.macs, self.sw_overhead)
    }

    /// Modelled latency normalised per CAN frame.
    pub fn latency_per_frame(&self) -> SimTime {
        SimTime::from_nanos(
            self.latency_per_invocation().as_nanos() / u64::from(self.frames_per_invocation.max(1)),
        )
    }

    /// Modelled energy per frame in joules.
    pub fn energy_per_frame_j(&self) -> f64 {
        self.platform
            .invocation_energy_j(self.macs, self.sw_overhead)
            / f64::from(self.frames_per_invocation.max(1))
    }
}

/// The six literature workloads of Table II with calibrated overheads.
pub fn table2_workloads() -> Vec<BaselineWorkload> {
    vec![
        BaselineWorkload {
            model: "GRU [2]",
            macs: u64::from(GruIds::FRAMES_PER_BATCH) * GruIds::ma2022().macs_per_frame(),
            frames_per_invocation: GruIds::FRAMES_PER_BATCH,
            platform: Platform::jetson_xavier_nx(),
            sw_overhead: SimTime::from_micros(869_000),
        },
        BaselineWorkload {
            model: "MLIDS [3]",
            macs: MlidsLstm::desta2020().macs_per_frame(),
            frames_per_invocation: 1,
            platform: Platform::gtx_titan_x(),
            sw_overhead: SimTime::from_micros(273_000),
        },
        BaselineWorkload {
            model: "NovelADS [10]",
            macs: NovelAds::agrawal2022().macs_per_block(),
            frames_per_invocation: NovelAds::FRAMES_PER_BLOCK,
            platform: Platform::jetson_nano(),
            sw_overhead: SimTime::from_micros(123_300),
        },
        BaselineWorkload {
            model: "DCNN [4]",
            macs: Dcnn::song2020().macs(),
            frames_per_invocation: Dcnn::FRAMES_PER_BLOCK,
            platform: Platform::tesla_k80(),
            sw_overhead: SimTime::from_micros(2_980),
        },
        BaselineWorkload {
            model: "TCAN-IDS [11]",
            macs: TcanIds::cheng2022().macs_per_window(),
            frames_per_invocation: TcanIds::FRAMES_PER_WINDOW,
            platform: Platform::jetson_agx(),
            sw_overhead: SimTime::from_micros(1_390),
        },
        BaselineWorkload {
            model: "MTH-IDS [9]",
            macs: 2_000,
            frames_per_invocation: 1,
            platform: Platform::raspberry_pi3(),
            sw_overhead: SimTime::from_micros(370),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modelled_rows_match_published_within_10_percent() {
        let published = literature::table2_rows();
        for (w, p) in table2_workloads().iter().zip(&published) {
            assert_eq!(w.model, p.model);
            let modelled = w.latency_per_invocation().as_secs_f64();
            let target = p.latency.as_secs_f64();
            let err = (modelled - target).abs() / target;
            assert!(
                err < 0.10,
                "{}: modelled {:.4}s vs published {:.4}s ({:.1}% off)",
                w.model,
                modelled,
                target,
                err * 100.0
            );
        }
    }

    #[test]
    fn per_frame_ordering_matches_table() {
        // Among per-message IDSs, MTH-IDS is the fastest baseline and
        // MLIDS the slowest row of the whole table per frame.
        let rows = table2_workloads();
        let mth = rows.iter().find(|w| w.model.starts_with("MTH")).unwrap();
        let mlids = rows.iter().find(|w| w.model.starts_with("MLIDS")).unwrap();
        for w in rows.iter().filter(|w| w.frames_per_invocation == 1) {
            assert!(
                mth.latency_per_frame() <= w.latency_per_frame(),
                "{}",
                w.model
            );
        }
        for w in &rows {
            assert!(
                mlids.latency_per_frame() >= w.latency_per_frame(),
                "{}",
                w.model
            );
        }
    }

    #[test]
    fn energy_per_frame_is_positive_and_bounded() {
        for w in table2_workloads() {
            let e = w.energy_per_frame_j();
            assert!(e > 0.0 && e < 100.0, "{}: {e} J", w.model);
        }
    }

    #[test]
    fn block_models_amortise_invocation_cost() {
        let rows = table2_workloads();
        let gru = rows.iter().find(|w| w.model.starts_with("GRU")).unwrap();
        assert!(gru.latency_per_frame() < gru.latency_per_invocation());
    }
}
