//! The published comparison rows, verbatim from the paper's Tables I and
//! II. These are the "reported literature" columns the benchmark harness
//! prints next to our measured results — exactly how the paper itself
//! presents them.

use canids_can::time::SimTime;

/// One accuracy row of Table I (percentages).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyRow {
    /// Model name as printed in the paper.
    pub model: &'static str,
    /// Precision in percent.
    pub precision: f64,
    /// Recall in percent.
    pub recall: f64,
    /// F1 score in percent.
    pub f1: f64,
    /// False-negative rate in percent (not reported by every paper).
    pub fnr: Option<f64>,
}

/// Table I, DoS section (literature rows, ours excluded).
pub fn table1_dos() -> Vec<AccuracyRow> {
    vec![
        AccuracyRow {
            model: "DCNN [4]",
            precision: 100.0,
            recall: 99.89,
            f1: 99.95,
            fnr: Some(0.13),
        },
        AccuracyRow {
            model: "MLIDS [3]",
            precision: 99.9,
            recall: 100.0,
            f1: 99.9,
            fnr: None,
        },
        AccuracyRow {
            model: "NovelADS [10]",
            precision: 99.97,
            recall: 99.91,
            f1: 99.94,
            fnr: None,
        },
        AccuracyRow {
            model: "TCAN-IDS [11]",
            precision: 100.0,
            recall: 99.97,
            f1: 99.98,
            fnr: None,
        },
        AccuracyRow {
            model: "GRU [2]",
            precision: 99.93,
            recall: 99.91,
            f1: 99.92,
            fnr: None,
        },
    ]
}

/// Table I, Fuzzy section (literature rows, ours excluded).
pub fn table1_fuzzy() -> Vec<AccuracyRow> {
    vec![
        AccuracyRow {
            model: "DCNN [4]",
            precision: 99.95,
            recall: 99.65,
            f1: 99.80,
            fnr: Some(0.5),
        },
        AccuracyRow {
            model: "MLIDS [3]",
            precision: 99.9,
            recall: 99.9,
            f1: 99.9,
            fnr: None,
        },
        AccuracyRow {
            model: "NovelADS [10]",
            precision: 99.99,
            recall: 100.0,
            f1: 100.0,
            fnr: None,
        },
        AccuracyRow {
            model: "TCAN-IDS [11]",
            precision: 99.96,
            recall: 99.89,
            // 99.92 = harmonic mean of P/R; the seed carried 99.22
            // (copy of the GRU row), which is impossible — F1 is
            // bounded by [min(P, R), max(P, R)].
            f1: 99.92,
            fnr: None,
        },
        AccuracyRow {
            model: "GRU [2]",
            precision: 99.32,
            recall: 99.13,
            f1: 99.22,
            fnr: None,
        },
    ]
}

/// The paper's own Table I rows for the 4-bit QMLP (reference targets for
/// our measured reproduction).
pub fn table1_qmlp_paper() -> (AccuracyRow, AccuracyRow) {
    (
        AccuracyRow {
            model: "4-bit-QMLP (paper)",
            precision: 99.99,
            recall: 99.99,
            f1: 99.99,
            fnr: Some(0.01),
        },
        AccuracyRow {
            model: "4-bit-QMLP (paper)",
            precision: 99.68,
            recall: 99.93,
            f1: 99.80,
            fnr: Some(0.07),
        },
    )
}

/// One latency row of Table II.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyRow {
    /// Model name as printed in the paper.
    pub model: &'static str,
    /// Published latency per invocation.
    pub latency: SimTime,
    /// Frames covered by that latency.
    pub frames: u32,
    /// Platform string as printed.
    pub platform: &'static str,
}

impl LatencyRow {
    /// Latency normalised per CAN frame.
    pub fn per_frame(&self) -> SimTime {
        SimTime::from_nanos(self.latency.as_nanos() / u64::from(self.frames.max(1)))
    }
}

/// Table II, literature rows (ours excluded).
pub fn table2_rows() -> Vec<LatencyRow> {
    vec![
        LatencyRow {
            model: "GRU [2]",
            latency: SimTime::from_millis(890),
            frames: 5_000,
            platform: "Jetson Xavier NX",
        },
        LatencyRow {
            model: "MLIDS [3]",
            latency: SimTime::from_millis(275),
            frames: 1,
            platform: "GTX Titan X",
        },
        LatencyRow {
            model: "NovelADS [10]",
            latency: SimTime::from_micros(128_700),
            frames: 100,
            platform: "Jetson Nano",
        },
        LatencyRow {
            model: "DCNN [4]",
            latency: SimTime::from_millis(5),
            frames: 29,
            platform: "Tesla K80",
        },
        LatencyRow {
            model: "TCAN-IDS [11]",
            latency: SimTime::from_micros(3_400),
            frames: 64,
            platform: "Jetson AGX",
        },
        LatencyRow {
            model: "MTH-IDS [9]",
            latency: SimTime::from_micros(574),
            frames: 1,
            platform: "Raspberry Pi 3",
        },
    ]
}

/// The paper's own Table II row (reference target).
pub fn table2_qmlp_paper() -> LatencyRow {
    LatencyRow {
        model: "4-bit-QMLP (paper)",
        latency: SimTime::from_micros(120),
        frames: 1,
        platform: "Zynq Ultrascale+",
    }
}

/// The paper's in-text headline numbers (reference targets).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperHeadlines {
    /// Per-message processing latency.
    pub latency: SimTime,
    /// Messages per second at highest payload capacity.
    pub throughput_fps: f64,
    /// Board power during inference.
    pub power_w: f64,
    /// Energy per inference.
    pub energy_mj: f64,
    /// Resource share of the device.
    pub resource_fraction: f64,
    /// A6000 GPU reference energy per inference.
    pub gpu_energy_j: f64,
}

/// The in-text results of Section II.
pub fn paper_headlines() -> PaperHeadlines {
    PaperHeadlines {
        latency: SimTime::from_micros(120),
        throughput_fps: 8_300.0,
        power_w: 2.09,
        energy_mj: 0.25,
        resource_fraction: 0.04,
        gpu_energy_j: 9.12,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_frame_normalisation() {
        let dcnn = table2_rows()[3];
        assert_eq!(dcnn.frames, 29);
        let per_frame = dcnn.per_frame();
        assert!((per_frame.as_micros_f64() - 5_000.0 / 29.0).abs() < 1.0);
    }

    #[test]
    fn qmlp_has_lowest_detection_delay() {
        // The paper's point: a block IDS cannot produce a verdict before
        // its whole invocation completes (and the block acquisition time
        // is not even counted), so the detection delay is the invocation
        // latency — and the QMLP's 0.12 ms beats every row.
        let ours = table2_qmlp_paper().latency;
        for row in table2_rows() {
            assert!(ours < row.latency, "{} beats the QMLP?", row.model);
        }
    }

    #[test]
    fn mth_is_fastest_per_frame_literature_ids() {
        // Among the per-message IDSs (frames == 1), MTH-IDS leads the
        // literature; the paper quotes a 4.8x improvement over it.
        let per_frame: Vec<_> = table2_rows()
            .into_iter()
            .filter(|r| r.frames == 1)
            .collect();
        let mth = per_frame
            .iter()
            .find(|r| r.model.starts_with("MTH"))
            .copied()
            .unwrap();
        for row in &per_frame {
            assert!(mth.latency <= row.latency, "{}", row.model);
        }
        let speedup = mth.latency.as_secs_f64() / table2_qmlp_paper().latency.as_secs_f64();
        assert!(
            (4.0..5.5).contains(&speedup),
            "speedup {speedup} vs paper 4.8x"
        );
    }

    #[test]
    fn accuracy_rows_complete() {
        assert_eq!(table1_dos().len(), 5);
        assert_eq!(table1_fuzzy().len(), 5);
        for row in table1_dos().into_iter().chain(table1_fuzzy()) {
            assert!(row.precision > 99.0 && row.precision <= 100.0);
            assert!(row.recall > 99.0 && row.recall <= 100.0);
        }
    }

    #[test]
    fn headlines_are_self_consistent() {
        let h = paper_headlines();
        // energy ≈ power × latency.
        let derived_mj = h.power_w * h.latency.as_secs_f64() * 1e3;
        assert!((derived_mj - h.energy_mj).abs() < 0.01, "{derived_mj}");
        // throughput ≈ 1 / latency.
        assert!(h.throughput_fps * h.latency.as_secs_f64() <= 1.05);
    }
}
