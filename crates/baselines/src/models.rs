//! Architecture-level reimplementations of the literature IDS models.
//!
//! Each model reproduces the published architecture's *shape* — input
//! framing (per-frame vs block), layer structure and MAC count — which is
//! what the latency comparison (Table II) depends on. Weights are seeded;
//! classification quality for our measured rows comes from the trainable
//! baselines ([`crate::mth`] and the QMLP itself), exactly as the paper
//! quotes literature accuracy numbers rather than re-running them.

use crate::nn::{
    attention_macs, global_avg_pool, max_pool2, self_attention, Conv2d, GruCell, LstmCell, Volume,
};

/// DCNN (Song, Woo & Kim 2020): a reduced Inception-ResNet on a 29×29
/// grid of 29 consecutive identifier bit-vectors.
#[derive(Debug, Clone)]
pub struct Dcnn {
    layers: Vec<Conv2d>,
}

impl Dcnn {
    /// Frames consumed per invocation (the 29-frame block).
    pub const FRAMES_PER_BLOCK: u32 = 29;

    /// The published topology, reduced: three conv stages with pooling.
    pub fn song2020() -> Self {
        Dcnn {
            layers: vec![
                Conv2d::new(1, 32, 3, 0xD0),
                Conv2d::new(32, 64, 3, 0xD1),
                Conv2d::new(64, 128, 3, 0xD2),
            ],
        }
    }

    /// MACs per 29-frame block.
    pub fn macs(&self) -> u64 {
        // 29×29 → pool → 14×14 → pool → 7×7.
        let dims = [(29usize, 29usize), (14, 14), (7, 7)];
        self.layers
            .iter()
            .zip(dims)
            .map(|(l, (h, w))| l.macs(h, w))
            .sum::<u64>()
            + 128 * 2 // classifier head
    }

    /// Forward pass over a 29×29 binary identifier grid.
    ///
    /// # Panics
    ///
    /// Panics when `grid.len() != 29 * 29`.
    pub fn forward(&self, grid: &[f32]) -> Vec<f32> {
        assert_eq!(grid.len(), 29 * 29, "DCNN expects a 29x29 grid");
        let mut v = Volume {
            channels: 1,
            height: 29,
            width: 29,
            data: grid.to_vec(),
        };
        for (i, layer) in self.layers.iter().enumerate() {
            v = layer.forward(&v);
            if i + 1 < self.layers.len() {
                v = max_pool2(&v);
            }
        }
        global_avg_pool(&v)
    }
}

/// GRU IDS (Ma et al. 2022): per-frame features through a GRU, evaluated
/// on 5000-frame batches on a Jetson Xavier NX.
#[derive(Debug, Clone)]
pub struct GruIds {
    cell: GruCell,
}

impl GruIds {
    /// Frames per published invocation.
    pub const FRAMES_PER_BATCH: u32 = 5_000;

    /// The published configuration (hidden 256 over byte features).
    pub fn ma2022() -> Self {
        GruIds {
            cell: GruCell::new(10, 256, 0x6A),
        }
    }

    /// MACs per frame (one GRU step + head).
    pub fn macs_per_frame(&self) -> u64 {
        self.cell.macs() + 256 * 2
    }

    /// Runs a feature sequence, returning the final hidden state.
    pub fn forward(&self, seq: &[Vec<f32>]) -> Vec<f32> {
        let mut h = vec![0.0; self.cell.hidden];
        for x in seq {
            h = self.cell.step(x, &h);
        }
        h
    }
}

/// MLIDS (Desta et al. 2020): per-frame LSTM over raw high-dimensional
/// CAN words on a GTX Titan X.
#[derive(Debug, Clone)]
pub struct MlidsLstm {
    cell: LstmCell,
}

impl MlidsLstm {
    /// The published configuration (hidden 128 over the 75-bit frame).
    pub fn desta2020() -> Self {
        MlidsLstm {
            cell: LstmCell::new(75, 128, 0x11D5),
        }
    }

    /// MACs per frame.
    pub fn macs_per_frame(&self) -> u64 {
        self.cell.macs() + 128 * 2
    }

    /// Runs one frame (stateless per-message classification).
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        let (h, _) = self.cell.step(
            x,
            &vec![0.0; self.cell.hidden],
            &vec![0.0; self.cell.hidden],
        );
        h
    }
}

/// TCAN-IDS (Cheng et al. 2022): temporal convolution + attention over
/// 64-frame windows on a Jetson AGX.
#[derive(Debug, Clone)]
pub struct TcanIds {
    conv: Conv2d,
}

impl TcanIds {
    /// Frames per published window.
    pub const FRAMES_PER_WINDOW: u32 = 64;
    /// Attention model dimension.
    pub const DIM: usize = 64;

    /// The published configuration.
    pub fn cheng2022() -> Self {
        TcanIds {
            conv: Conv2d::new(1, 64, 3, 0x7CA),
        }
    }

    /// MACs per 64-frame window (temporal conv + self-attention).
    pub fn macs_per_window(&self) -> u64 {
        self.conv.macs(64, 10) + attention_macs(64, Self::DIM)
    }

    /// Forward over a 64-frame window of 10-feature rows.
    ///
    /// # Panics
    ///
    /// Panics when the window is not `64 × 10`.
    pub fn forward(&self, window: &[Vec<f32>]) -> Vec<Vec<f32>> {
        assert_eq!(window.len(), 64, "TCAN expects 64 frames");
        assert!(window.iter().all(|r| r.len() == 10));
        let mut vol = Volume::zeros(1, 64, 10);
        for (y, row) in window.iter().enumerate() {
            for (x, &v) in row.iter().enumerate() {
                *vol.at_mut(0, y, x) = v;
            }
        }
        let conv = self.conv.forward(&vol);
        // Collapse channel×width into DIM-length tokens per frame.
        let seq: Vec<Vec<f32>> = (0..64)
            .map(|y| {
                (0..Self::DIM)
                    .map(|c| {
                        let mut s = 0.0;
                        for x in 0..10 {
                            // lint:allow(float-reassociation): pinned x = 0..10 pooling order; no qnn dep here
                            s += conv.at(c, y, x);
                        }
                        s / 10.0
                    })
                    .collect()
            })
            .collect();
        self_attention(&seq)
    }
}

/// NovelADS (Agrawal et al. 2022): CNN+LSTM anomaly detector over
/// 100-frame blocks on a Jetson Nano. Modelled at the MAC level.
#[derive(Debug, Clone)]
pub struct NovelAds {
    conv: Conv2d,
    lstm: LstmCell,
}

impl NovelAds {
    /// Frames per published block.
    pub const FRAMES_PER_BLOCK: u32 = 100;

    /// The published configuration.
    pub fn agrawal2022() -> Self {
        NovelAds {
            conv: Conv2d::new(1, 32, 3, 0xA05),
            lstm: LstmCell::new(32, 128, 0xA06),
        }
    }

    /// MACs per 100-frame block.
    pub fn macs_per_block(&self) -> u64 {
        self.conv.macs(100, 10) + 100 * self.lstm.macs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dcnn_macs_and_forward() {
        let m = Dcnn::song2020();
        assert!(m.macs() > 1_000_000, "DCNN is the heavy block model");
        let out = m.forward(&[0.0; 29 * 29]);
        assert_eq!(out.len(), 128);
        let out1 = m.forward(&[1.0; 29 * 29]);
        assert_ne!(out, out1);
    }

    #[test]
    fn gru_ids_runs_sequences() {
        let m = GruIds::ma2022();
        let seq: Vec<Vec<f32>> = (0..20).map(|i| vec![(i % 3) as f32 * 0.1; 10]).collect();
        let h = m.forward(&seq);
        assert_eq!(h.len(), 256);
        assert!(m.macs_per_frame() > 100_000);
    }

    #[test]
    fn mlids_is_per_frame() {
        let m = MlidsLstm::desta2020();
        let h = m.forward(&[0.5; 75]);
        assert_eq!(h.len(), 128);
        assert!(m.macs_per_frame() > 50_000);
    }

    #[test]
    fn tcan_window_shapes() {
        let m = TcanIds::cheng2022();
        let window: Vec<Vec<f32>> = (0..64).map(|i| vec![(i as f32) / 64.0; 10]).collect();
        let out = m.forward(&window);
        assert_eq!(out.len(), 64);
        assert_eq!(out[0].len(), TcanIds::DIM);
        assert!(m.macs_per_window() > 100_000);
    }

    #[test]
    fn novelads_macs_positive() {
        let m = NovelAds::agrawal2022();
        assert!(m.macs_per_block() > 1_000_000);
    }

    #[test]
    fn relative_workload_ordering_matches_architectures() {
        // Block CNNs are far heavier per invocation than per-frame cells.
        let dcnn = Dcnn::song2020().macs();
        let mlids = MlidsLstm::desta2020().macs_per_frame();
        assert!(dcnn > 10 * mlids);
    }
}
