//! Analytic execution-platform models.
//!
//! We cannot run Jetson boards, discrete GPUs or a Raspberry Pi here, so
//! each platform is an analytic model: a sustained compute rate, a fixed
//! per-invocation dispatch overhead and a power envelope (figures from
//! public spec sheets). Per-row software overheads in
//! [`crate::workload`] absorb each paper's preprocessing pipeline, and
//! are calibrated so the modelled Table II reproduces the published
//! rows; the calibration is recorded in EXPERIMENTS.md.

use canids_can::time::SimTime;
use serde::{Deserialize, Serialize};

/// An inference platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    /// Marketing name as quoted by the papers.
    pub name: &'static str,
    /// Sustained multiply-accumulate rate for small-batch inference,
    /// in GMAC/s (well below peak for latency-bound batch-1 work).
    pub sustained_gmacs: f64,
    /// Fixed per-invocation dispatch overhead (framework + transfers).
    pub dispatch: SimTime,
    /// Board/device power while running inference, in watts.
    pub power_w: f64,
}

impl Platform {
    /// NVIDIA Jetson Xavier NX (GRU IDS).
    pub fn jetson_xavier_nx() -> Self {
        Platform {
            name: "Jetson Xavier NX",
            sustained_gmacs: 60.0,
            dispatch: SimTime::from_millis(4),
            power_w: 15.0,
        }
    }

    /// NVIDIA GTX Titan X (MLIDS).
    pub fn gtx_titan_x() -> Self {
        Platform {
            name: "GTX Titan X",
            sustained_gmacs: 800.0,
            dispatch: SimTime::from_millis(2),
            power_w: 250.0,
        }
    }

    /// NVIDIA Jetson Nano (NovelADS).
    pub fn jetson_nano() -> Self {
        Platform {
            name: "Jetson Nano",
            sustained_gmacs: 25.0,
            dispatch: SimTime::from_millis(5),
            power_w: 10.0,
        }
    }

    /// NVIDIA Tesla K80 (DCNN).
    pub fn tesla_k80() -> Self {
        Platform {
            name: "Tesla K80",
            sustained_gmacs: 500.0,
            dispatch: SimTime::from_millis(2),
            power_w: 300.0,
        }
    }

    /// NVIDIA Jetson AGX Xavier (TCAN-IDS).
    pub fn jetson_agx() -> Self {
        Platform {
            name: "Jetson AGX",
            sustained_gmacs: 120.0,
            dispatch: SimTime::from_millis(2),
            power_w: 30.0,
        }
    }

    /// Raspberry Pi 3 (MTH-IDS).
    pub fn raspberry_pi3() -> Self {
        Platform {
            name: "Raspberry Pi 3",
            sustained_gmacs: 1.0,
            dispatch: SimTime::from_micros(200),
            power_w: 4.0,
        }
    }

    /// NVIDIA RTX A6000 — the paper's GPU energy reference for the 8-bit
    /// QMLP (9.12 J per inference, dominated by dispatch + synchronised
    /// measurement overheads at batch 1).
    pub fn rtx_a6000() -> Self {
        Platform {
            name: "RTX A6000",
            sustained_gmacs: 5_000.0,
            dispatch: SimTime::from_millis(30),
            power_w: 300.0,
        }
    }

    /// Latency of one invocation: dispatch + extra software + compute.
    pub fn invocation_latency(&self, macs: u64, sw_overhead: SimTime) -> SimTime {
        let compute_s = macs as f64 / (self.sustained_gmacs * 1e9);
        self.dispatch + sw_overhead + SimTime::from_secs_f64(compute_s)
    }

    /// Energy of one invocation in joules.
    pub fn invocation_energy_j(&self, macs: u64, sw_overhead: SimTime) -> f64 {
        self.power_w * self.invocation_latency(macs, sw_overhead).as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_includes_all_terms() {
        let p = Platform::raspberry_pi3();
        let l = p.invocation_latency(1_000_000, SimTime::from_micros(100));
        // 200 µs dispatch + 100 µs sw + 1 ms compute at 1 GMAC/s.
        assert!((l.as_micros_f64() - 1_300.0).abs() < 1.0, "{l}");
    }

    #[test]
    fn faster_platform_lower_compute_latency() {
        let macs = 100_000_000u64;
        let slow = Platform::jetson_nano().invocation_latency(macs, SimTime::ZERO);
        let fast = Platform::gtx_titan_x().invocation_latency(macs, SimTime::ZERO);
        assert!(fast < slow);
    }

    #[test]
    fn energy_scales_with_power_and_time() {
        let p = Platform::tesla_k80();
        let e = p.invocation_energy_j(0, SimTime::from_millis(10));
        // 300 W for 12 ms (dispatch 2 ms + sw 10 ms).
        assert!((e - 300.0 * 0.012).abs() < 1e-9);
    }

    #[test]
    fn a6000_reference_hits_9_12_j_scale() {
        // The paper reports 9.12 J per inference for the 8-bit QMLP on an
        // A6000 — dispatch-dominated at 300 W.
        let p = Platform::rtx_a6000();
        let e = p.invocation_energy_j(75 * 64 + 64 * 32 + 32 * 2, SimTime::from_millis(0));
        assert!((5.0..12.0).contains(&e), "A6000 energy {e} J");
    }
}
