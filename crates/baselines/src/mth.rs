//! A trainable classical-ML baseline in the spirit of MTH-IDS
//! (Yang, Moubayed & Shami 2021): a CART decision tree for known-attack
//! detection plus a k-nearest-neighbour check, combined by majority.
//! Unlike the neural literature models, this baseline trains in
//! milliseconds, so the harness can produce *measured* rows on the same
//! synthetic captures the QMLP uses.

use serde::{Deserialize, Serialize};

/// A binary CART decision tree (Gini impurity, axis-aligned splits).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    max_depth: usize,
    min_samples: usize,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    Leaf {
        class: usize,
    },
    Split {
        feature: usize,
        threshold: f32,
        left: usize,
        right: usize,
    },
}

fn gini(counts: [usize; 2]) -> f64 {
    let n = (counts[0] + counts[1]) as f64;
    if n == 0.0 {
        return 0.0;
    }
    let p0 = counts[0] as f64 / n;
    let p1 = counts[1] as f64 / n;
    1.0 - p0 * p0 - p1 * p1
}

impl DecisionTree {
    /// Fits a tree of at most `max_depth` levels.
    ///
    /// # Panics
    ///
    /// Panics when `xs` and `ys` lengths differ or `xs` is empty.
    pub fn fit(xs: &[Vec<f32>], ys: &[usize], max_depth: usize) -> Self {
        assert_eq!(xs.len(), ys.len(), "features/labels length mismatch");
        assert!(!xs.is_empty(), "training set must be non-empty");
        let mut tree = DecisionTree {
            nodes: Vec::new(),
            max_depth,
            min_samples: 4,
        };
        let idx: Vec<usize> = (0..xs.len()).collect();
        tree.build(xs, ys, &idx, 0);
        tree
    }

    fn majority(ys: &[usize], idx: &[usize]) -> usize {
        let ones = idx.iter().filter(|&&i| ys[i] != 0).count();
        usize::from(ones * 2 > idx.len())
    }

    fn build(&mut self, xs: &[Vec<f32>], ys: &[usize], idx: &[usize], depth: usize) -> usize {
        let ones = idx.iter().filter(|&&i| ys[i] != 0).count();
        let pure = ones == 0 || ones == idx.len();
        if pure || depth >= self.max_depth || idx.len() < self.min_samples {
            let node = Node::Leaf {
                class: Self::majority(ys, idx),
            };
            self.nodes.push(node);
            return self.nodes.len() - 1;
        }

        // Best axis-aligned split by Gini gain over candidate thresholds.
        let dims = xs[0].len();
        let mut best: Option<(usize, f32, f64)> = None;
        let parent_gini = gini([idx.len() - ones, ones]);
        // Column-major scan of row-major samples; an index is the
        // natural way to address one feature across all rows.
        #[allow(clippy::needless_range_loop)]
        for feature in 0..dims {
            let mut values: Vec<f32> = idx.iter().map(|&i| xs[i][feature]).collect();
            values.sort_by(f32::total_cmp);
            values.dedup();
            // Sample up to 16 candidate thresholds per feature.
            let step = (values.len() / 16).max(1);
            for pair in values.windows(2).step_by(step) {
                let threshold = (pair[0] + pair[1]) / 2.0;
                let mut left = [0usize; 2];
                let mut right = [0usize; 2];
                for &i in idx {
                    let side = if xs[i][feature] <= threshold {
                        &mut left
                    } else {
                        &mut right
                    };
                    side[usize::from(ys[i] != 0)] += 1;
                }
                let nl = (left[0] + left[1]) as f64;
                let nr = (right[0] + right[1]) as f64;
                if nl == 0.0 || nr == 0.0 {
                    continue;
                }
                let n = nl + nr;
                let weighted = nl / n * gini(left) + nr / n * gini(right);
                let gain = parent_gini - weighted;
                if best.is_none_or(|(_, _, g)| gain > g) && gain > 1e-9 {
                    best = Some((feature, threshold, gain));
                }
            }
        }

        match best {
            None => {
                self.nodes.push(Node::Leaf {
                    class: Self::majority(ys, idx),
                });
                self.nodes.len() - 1
            }
            Some((feature, threshold, _)) => {
                let (li, ri): (Vec<usize>, Vec<usize>) =
                    idx.iter().partition(|&&i| xs[i][feature] <= threshold);
                // Reserve the split node, then build children.
                self.nodes.push(Node::Leaf { class: 0 });
                let me = self.nodes.len() - 1;
                let left = self.build(xs, ys, &li, depth + 1);
                let right = self.build(xs, ys, &ri, depth + 1);
                self.nodes[me] = Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                };
                me
            }
        }
    }

    /// Predicts the class of one sample.
    pub fn predict(&self, x: &[f32]) -> usize {
        // The root is the first node pushed by the outermost build call:
        // for a split tree that is the reserved node at index 0.
        let mut cursor = 0usize;
        loop {
            match &self.nodes[cursor] {
                Node::Leaf { class } => return *class,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    cursor = if x[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Tree depth actually reached.
    pub fn depth(&self) -> usize {
        fn walk(nodes: &[Node], i: usize) -> usize {
            match &nodes[i] {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => 1 + walk(nodes, *left).max(walk(nodes, *right)),
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            walk(&self.nodes, 0)
        }
    }
}

/// Brute-force k-nearest-neighbour classifier on a training subsample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Knn {
    k: usize,
    xs: Vec<Vec<f32>>,
    ys: Vec<usize>,
}

impl Knn {
    /// Stores up to `max_points` reference samples.
    pub fn fit(xs: &[Vec<f32>], ys: &[usize], k: usize, max_points: usize) -> Self {
        let stride = (xs.len() / max_points.max(1)).max(1);
        let mut sx = Vec::new();
        let mut sy = Vec::new();
        for i in (0..xs.len()).step_by(stride) {
            sx.push(xs[i].clone());
            sy.push(ys[i]);
        }
        Knn {
            k: k.max(1),
            xs: sx,
            ys: sy,
        }
    }

    /// Predicts by majority over the k nearest reference samples.
    pub fn predict(&self, x: &[f32]) -> usize {
        let mut dists: Vec<(f32, usize)> = self
            .xs
            .iter()
            .zip(&self.ys)
            .map(|(p, &y)| {
                // lint:allow(float-reassociation): left-to-right sum over the fixed feature order; no qnn dep here
                let d: f32 = p.iter().zip(x).map(|(a, b)| (a - b) * (a - b)).sum();
                (d, y)
            })
            .collect();
        dists.sort_by(|a, b| a.0.total_cmp(&b.0));
        let ones = dists.iter().take(self.k).filter(|&&(_, y)| y != 0).count();
        usize::from(ones * 2 > self.k.min(dists.len()))
    }

    /// Reference-set size.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// `true` when no reference samples are stored.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }
}

/// The combined tree+kNN detector (majority with the tree breaking ties).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MthIds {
    tree: DecisionTree,
    knn: Knn,
}

impl MthIds {
    /// Fits both stages.
    pub fn fit(xs: &[Vec<f32>], ys: &[usize]) -> Self {
        MthIds {
            tree: DecisionTree::fit(xs, ys, 12),
            knn: Knn::fit(xs, ys, 3, 512),
        }
    }

    /// Predicts the binary class of one sample.
    ///
    /// Both stages run (the kNN stage contributes its share of the
    /// baseline's compute cost), but the tree — the "known attack"
    /// stage — dominates disagreements, so its verdict stands.
    pub fn predict(&self, x: &[f32]) -> usize {
        let _ = self.knn.predict(x);
        self.tree.predict(x)
    }

    /// The tree stage.
    pub fn tree(&self) -> &DecisionTree {
        &self.tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn toy(n: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let y = usize::from(rng.gen_bool(0.4));
            // Class 1: feature 0 high and feature 2 low.
            let x = vec![
                if y == 1 {
                    rng.gen_range(0.6..1.0)
                } else {
                    rng.gen_range(0.0..0.4)
                },
                rng.gen_range(0.0..1.0),
                if y == 1 {
                    rng.gen_range(0.0..0.3)
                } else {
                    rng.gen_range(0.5..1.0)
                },
            ];
            xs.push(x);
            ys.push(y);
        }
        (xs, ys)
    }

    #[test]
    fn tree_learns_separable_data() {
        let (xs, ys) = toy(500, 1);
        let tree = DecisionTree::fit(&xs, &ys, 8);
        let correct = xs
            .iter()
            .zip(&ys)
            .filter(|(x, &y)| tree.predict(x) == y)
            .count();
        assert!(correct as f64 / xs.len() as f64 > 0.99, "{correct}/500");
        assert!(tree.depth() >= 2);
    }

    #[test]
    fn tree_respects_max_depth() {
        let (xs, ys) = toy(500, 2);
        let tree = DecisionTree::fit(&xs, &ys, 2);
        assert!(tree.depth() <= 3, "depth {}", tree.depth());
    }

    #[test]
    fn pure_leaf_short_circuits() {
        let xs = vec![vec![0.0], vec![1.0], vec![2.0]];
        let ys = vec![0, 0, 0];
        let tree = DecisionTree::fit(&xs, &ys, 8);
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.predict(&[5.0]), 0);
    }

    #[test]
    fn knn_majority_vote() {
        let xs = vec![
            vec![0.0, 0.0],
            vec![0.1, 0.0],
            vec![1.0, 1.0],
            vec![0.9, 1.0],
        ];
        let ys = vec![0, 0, 1, 1];
        let knn = Knn::fit(&xs, &ys, 3, 100);
        assert_eq!(knn.predict(&[0.05, 0.0]), 0);
        assert_eq!(knn.predict(&[0.95, 1.0]), 1);
        assert_eq!(knn.len(), 4);
    }

    #[test]
    fn knn_subsamples_reference_set() {
        let (xs, ys) = toy(1000, 3);
        let knn = Knn::fit(&xs, &ys, 3, 100);
        assert!(knn.len() <= 100 + 1);
    }

    #[test]
    fn mth_combined_accuracy() {
        let (xs, ys) = toy(600, 4);
        let (tx, ty) = toy(200, 5);
        let model = MthIds::fit(&xs, &ys);
        let correct = tx
            .iter()
            .zip(&ty)
            .filter(|(x, &y)| model.predict(x) == y)
            .count();
        assert!(correct as f64 / tx.len() as f64 > 0.97, "{correct}/200");
    }
}
