//! Minimal neural-network forward kernels for the baseline
//! reimplementations: 2-D convolution, GRU/LSTM cells, global pooling and
//! scaled-dot-product attention. These carry the baselines' *structure*
//! (shapes and MAC counts drive the latency models); weights are seeded
//! pseudo-random unless a caller trains/sets them.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A `channels × height × width` activation volume.
#[derive(Debug, Clone, PartialEq)]
pub struct Volume {
    /// Channel count.
    pub channels: usize,
    /// Height.
    pub height: usize,
    /// Width.
    pub width: usize,
    /// Row-major data, channel-major.
    pub data: Vec<f32>,
}

impl Volume {
    /// Zero-filled volume.
    pub fn zeros(channels: usize, height: usize, width: usize) -> Self {
        Volume {
            channels,
            height,
            width,
            data: vec![0.0; channels * height * width],
        }
    }

    /// Value accessor.
    pub fn at(&self, c: usize, y: usize, x: usize) -> f32 {
        self.data[(c * self.height + y) * self.width + x]
    }

    /// Mutable value accessor.
    pub fn at_mut(&mut self, c: usize, y: usize, x: usize) -> &mut f32 {
        &mut self.data[(c * self.height + y) * self.width + x]
    }
}

/// A 2-D convolution layer (stride 1, same padding) with ReLU.
#[derive(Debug, Clone)]
pub struct Conv2d {
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Square kernel size.
    pub kernel: usize,
    weights: Vec<f32>,
    bias: Vec<f32>,
}

impl Conv2d {
    /// Creates a layer with seeded He-initialised weights.
    pub fn new(in_channels: usize, out_channels: usize, kernel: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let fan_in = (in_channels * kernel * kernel) as f32;
        let bound = (2.0 / fan_in).sqrt();
        Conv2d {
            in_channels,
            out_channels,
            kernel,
            weights: (0..in_channels * out_channels * kernel * kernel)
                .map(|_| rng.gen_range(-bound..=bound))
                .collect(),
            bias: vec![0.0; out_channels],
        }
    }

    /// MACs for one forward pass over an `h × w` input.
    pub fn macs(&self, h: usize, w: usize) -> u64 {
        (self.in_channels * self.out_channels * self.kernel * self.kernel * h * w) as u64
    }

    /// Forward pass with ReLU.
    ///
    /// # Panics
    ///
    /// Panics when the input channel count differs from the layer's.
    pub fn forward(&self, input: &Volume) -> Volume {
        assert_eq!(input.channels, self.in_channels, "channel mismatch");
        let (h, w) = (input.height, input.width);
        let pad = self.kernel / 2;
        let mut out = Volume::zeros(self.out_channels, h, w);
        for oc in 0..self.out_channels {
            for y in 0..h {
                for x in 0..w {
                    let mut acc = self.bias[oc];
                    for ic in 0..self.in_channels {
                        for ky in 0..self.kernel {
                            for kx in 0..self.kernel {
                                let iy = y as isize + ky as isize - pad as isize;
                                let ix = x as isize + kx as isize - pad as isize;
                                if iy < 0 || ix < 0 || iy >= h as isize || ix >= w as isize {
                                    continue;
                                }
                                let wv = self.weights[((oc * self.in_channels + ic) * self.kernel
                                    + ky)
                                    * self.kernel
                                    + kx];
                                acc += wv * input.at(ic, iy as usize, ix as usize);
                            }
                        }
                    }
                    *out.at_mut(oc, y, x) = acc.max(0.0);
                }
            }
        }
        out
    }
}

/// 2×2 max pooling (stride 2).
pub fn max_pool2(input: &Volume) -> Volume {
    let h = input.height / 2;
    let w = input.width / 2;
    let mut out = Volume::zeros(input.channels, h.max(1), w.max(1));
    for c in 0..input.channels {
        for y in 0..h.max(1) {
            for x in 0..w.max(1) {
                let mut m = f32::NEG_INFINITY;
                for dy in 0..2 {
                    for dx in 0..2 {
                        let iy = (y * 2 + dy).min(input.height - 1);
                        let ix = (x * 2 + dx).min(input.width - 1);
                        m = m.max(input.at(c, iy, ix));
                    }
                }
                *out.at_mut(c, y, x) = m;
            }
        }
    }
    out
}

/// Global average pooling to a per-channel vector.
pub fn global_avg_pool(input: &Volume) -> Vec<f32> {
    let n = (input.height * input.width) as f32;
    (0..input.channels)
        .map(|c| {
            let mut s = 0.0;
            for y in 0..input.height {
                for x in 0..input.width {
                    // lint:allow(float-reassociation): pinned row-major pooling order; no qnn dep here
                    s += input.at(c, y, x);
                }
            }
            s / n
        })
        .collect()
}

/// A gated recurrent unit cell.
#[derive(Debug, Clone)]
pub struct GruCell {
    /// Input size.
    pub input: usize,
    /// Hidden size.
    pub hidden: usize,
    w: Vec<f32>, // 3 * hidden × (input + hidden + 1)
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

impl GruCell {
    /// Creates a seeded cell.
    pub fn new(input: usize, hidden: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 3 * hidden * (input + hidden + 1);
        let bound = (1.0 / (input + hidden) as f32).sqrt();
        GruCell {
            input,
            hidden,
            w: (0..n).map(|_| rng.gen_range(-bound..=bound)).collect(),
        }
    }

    /// MACs per time step.
    pub fn macs(&self) -> u64 {
        (3 * self.hidden * (self.input + self.hidden)) as u64
    }

    fn gate(&self, g: usize, j: usize, x: &[f32], h: &[f32]) -> f32 {
        let row = &self.w[(g * self.hidden + j) * (self.input + self.hidden + 1)..];
        let mut acc = row[self.input + self.hidden]; // bias
        for (k, &xv) in x.iter().enumerate() {
            acc += row[k] * xv;
        }
        for (k, &hv) in h.iter().enumerate() {
            acc += row[self.input + k] * hv;
        }
        acc
    }

    /// One step: `h' = GRU(x, h)`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn step(&self, x: &[f32], h: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.input, "input size mismatch");
        assert_eq!(h.len(), self.hidden, "hidden size mismatch");
        let mut out = vec![0.0; self.hidden];
        for (j, o) in out.iter_mut().enumerate() {
            let z = sigmoid(self.gate(0, j, x, h));
            let r = sigmoid(self.gate(1, j, x, h));
            let rh: Vec<f32> = h.iter().map(|&v| v * r).collect();
            let n = self.gate(2, j, x, &rh).tanh();
            *o = (1.0 - z) * n + z * h[j];
        }
        out
    }
}

/// A long short-term memory cell.
#[derive(Debug, Clone)]
pub struct LstmCell {
    /// Input size.
    pub input: usize,
    /// Hidden size.
    pub hidden: usize,
    w: Vec<f32>, // 4 * hidden × (input + hidden + 1)
}

impl LstmCell {
    /// Creates a seeded cell.
    pub fn new(input: usize, hidden: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 4 * hidden * (input + hidden + 1);
        let bound = (1.0 / (input + hidden) as f32).sqrt();
        LstmCell {
            input,
            hidden,
            w: (0..n).map(|_| rng.gen_range(-bound..=bound)).collect(),
        }
    }

    /// MACs per time step.
    pub fn macs(&self) -> u64 {
        (4 * self.hidden * (self.input + self.hidden)) as u64
    }

    fn gate(&self, g: usize, j: usize, x: &[f32], h: &[f32]) -> f32 {
        let row = &self.w[(g * self.hidden + j) * (self.input + self.hidden + 1)..];
        let mut acc = row[self.input + self.hidden];
        for (k, &xv) in x.iter().enumerate() {
            acc += row[k] * xv;
        }
        for (k, &hv) in h.iter().enumerate() {
            acc += row[self.input + k] * hv;
        }
        acc
    }

    /// One step: `(h', c') = LSTM(x, h, c)`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn step(&self, x: &[f32], h: &[f32], c: &[f32]) -> (Vec<f32>, Vec<f32>) {
        assert_eq!(x.len(), self.input, "input size mismatch");
        assert_eq!(h.len(), self.hidden, "hidden size mismatch");
        let mut h2 = vec![0.0; self.hidden];
        let mut c2 = vec![0.0; self.hidden];
        for j in 0..self.hidden {
            let i = sigmoid(self.gate(0, j, x, h));
            let f = sigmoid(self.gate(1, j, x, h));
            let g = self.gate(2, j, x, h).tanh();
            let o = sigmoid(self.gate(3, j, x, h));
            c2[j] = f * c[j] + i * g;
            h2[j] = o * c2[j].tanh();
        }
        (h2, c2)
    }
}

/// Scaled dot-product self-attention over a `seq × dim` matrix
/// (single head). Returns the attended sequence.
pub fn self_attention(seq: &[Vec<f32>]) -> Vec<Vec<f32>> {
    let n = seq.len();
    if n == 0 {
        return Vec::new();
    }
    let d = seq[0].len() as f32;
    let mut out = Vec::with_capacity(n);
    for q in seq {
        let mut scores: Vec<f32> = seq
            .iter()
            // lint:allow(float-reassociation): left-to-right dot product in fixed key order; no qnn dep here
            .map(|k| q.iter().zip(k).map(|(a, b)| a * b).sum::<f32>() / d.sqrt())
            .collect();
        let m = scores.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
        let mut denom = 0.0;
        for s in &mut scores {
            *s = (*s - m).exp();
            // lint:allow(float-reassociation): softmax denominator in pinned score order; no qnn dep here
            denom += *s;
        }
        let mut row = vec![0.0; seq[0].len()];
        for (w, v) in scores.iter().zip(seq) {
            for (r, &vv) in row.iter_mut().zip(v) {
                *r += w / denom * vv;
            }
        }
        out.push(row);
    }
    out
}

/// MACs of single-head self-attention over `seq × dim`.
pub fn attention_macs(seq: usize, dim: usize) -> u64 {
    // QK^T (seq²·dim) + weighted sum (seq²·dim).
    (2 * seq * seq * dim) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_shapes_and_macs() {
        let conv = Conv2d::new(1, 8, 3, 1);
        let input = Volume::zeros(1, 29, 29);
        let out = conv.forward(&input);
        assert_eq!((out.channels, out.height, out.width), (8, 29, 29));
        assert_eq!(conv.macs(29, 29), (8 * 9 * 29 * 29) as u64);
    }

    #[test]
    fn conv_identity_kernel_behaviour() {
        // All-zero input stays zero (bias 0, ReLU).
        let conv = Conv2d::new(2, 3, 3, 2);
        let out = conv.forward(&Volume::zeros(2, 8, 8));
        assert!(out.data.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn conv_relu_is_nonnegative() {
        let conv = Conv2d::new(1, 4, 3, 3);
        let mut input = Volume::zeros(1, 6, 6);
        for (i, v) in input.data.iter_mut().enumerate() {
            *v = (i as f32 * 0.7).sin();
        }
        let out = conv.forward(&input);
        assert!(out.data.iter().all(|&v| v >= 0.0));
        assert!(out.data.iter().any(|&v| v > 0.0));
    }

    #[test]
    fn max_pool_halves_dimensions() {
        let mut input = Volume::zeros(1, 4, 4);
        *input.at_mut(0, 0, 0) = 5.0;
        *input.at_mut(0, 3, 3) = 7.0;
        let out = max_pool2(&input);
        assert_eq!((out.height, out.width), (2, 2));
        assert_eq!(out.at(0, 0, 0), 5.0);
        assert_eq!(out.at(0, 1, 1), 7.0);
    }

    #[test]
    fn global_pool_averages() {
        let mut input = Volume::zeros(2, 2, 2);
        for v in &mut input.data[0..4] {
            *v = 2.0;
        }
        let pooled = global_avg_pool(&input);
        assert_eq!(pooled, vec![2.0, 0.0]);
    }

    #[test]
    fn gru_step_bounded_and_stateful() {
        let cell = GruCell::new(8, 16, 4);
        let x = vec![0.5; 8];
        let h0 = vec![0.0; 16];
        let h1 = cell.step(&x, &h0);
        let h2 = cell.step(&x, &h1);
        assert_eq!(h1.len(), 16);
        assert_ne!(h1, h2, "state must evolve");
        assert!(h1.iter().all(|v| v.abs() <= 1.0 + 1e-5));
        assert_eq!(cell.macs(), 3 * 16 * (8 + 16));
    }

    #[test]
    fn lstm_step_bounded_and_stateful() {
        let cell = LstmCell::new(8, 16, 5);
        let x = vec![0.5; 8];
        let (h1, c1) = cell.step(&x, &[0.0; 16], &[0.0; 16]);
        let (h2, _) = cell.step(&x, &h1, &c1);
        assert_ne!(h1, h2);
        assert!(h1.iter().all(|v| v.abs() <= 1.0 + 1e-5));
        assert_eq!(cell.macs(), 4 * 16 * (8 + 16));
    }

    #[test]
    fn attention_rows_are_convex_combinations() {
        let seq = vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![0.5, 0.5]];
        let out = self_attention(&seq);
        assert_eq!(out.len(), 3);
        for row in &out {
            // Convex combination of inputs whose coordinates sum to 1.
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-5, "sum {s}");
        }
        assert_eq!(attention_macs(3, 2), 2 * 9 * 2);
        assert!(self_attention(&[]).is_empty());
    }

    #[test]
    fn deterministic_for_seed() {
        let a = Conv2d::new(1, 2, 3, 9).forward(&Volume::zeros(1, 4, 4));
        let b = Conv2d::new(1, 2, 3, 9).forward(&Volume::zeros(1, 4, 4));
        assert_eq!(a, b);
    }
}
